//! Set-intersection result-reuse planning (paper Fig. 7).
//!
//! If `B^π(u_i) ⊆ B^π(u_j)` for positions `i < j`, the candidate set of
//! `u_j` can be computed from `stack[i]` intersected with only the
//! *remaining* backward neighbors `B^π(u_j) \ B^π(u_i)`, instead of from
//! scratch. The plan below picks, for each position, the reuse source
//! with the largest backward set (most work saved).
//!
//! Soundness note: stack levels store the *raw* neighborhood intersection;
//! all per-vertex predicates (label, degree, injectivity, symmetry) are
//! applied when candidates are consumed, so a stored level is reusable by
//! any later position regardless of label differences (see DESIGN.md §4).

use crate::order::MatchingOrder;

/// Reuse decision for one matching position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseStep {
    /// Position whose stored intersection seeds this one.
    pub source: usize,
    /// Backward positions still to intersect after seeding
    /// (`B^π(u_j) \ B^π(u_source)`).
    pub remaining: Vec<usize>,
}

/// Per-position reuse plan. `steps[i] = None` means compute from scratch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReusePlan {
    /// One entry per matching position.
    pub steps: Vec<Option<ReuseStep>>,
}

impl ReusePlan {
    /// Builds the reuse plan for a matching order.
    ///
    /// Reuse sources start at position 2: positions 0 and 1 are seeded by
    /// the initial edge task and never hold a stored intersection.
    pub fn compute(mo: &MatchingOrder) -> Self {
        let k = mo.len();
        let masks: Vec<u64> = mo
            .backward
            .iter()
            .map(|b| b.iter().fold(0u64, |m, &j| m | 1 << j))
            .collect();
        let mut steps: Vec<Option<ReuseStep>> = vec![None; k];
        for j in 3..k {
            let mut best: Option<usize> = None;
            for i in 2..j {
                // B(u_i) ⊆ B(u_j), and reuse must save at least one
                // intersection operand.
                if masks[i] & !masks[j] == 0
                    && !mo.backward[i].is_empty()
                    && best.is_none_or(|b| mo.backward[i].len() > mo.backward[b].len())
                {
                    best = Some(i);
                }
            }
            if let Some(i) = best {
                let remaining = mo.backward[j]
                    .iter()
                    .copied()
                    .filter(|&x| masks[i] >> x & 1 == 0)
                    .collect();
                steps[j] = Some(ReuseStep {
                    source: i,
                    remaining,
                });
            }
        }
        Self { steps }
    }

    /// Number of intersection operands saved across the whole plan — the
    /// quantity the reuse ablation (online appendix) reports.
    pub fn operands_saved(&self, mo: &MatchingOrder) -> usize {
        self.steps
            .iter()
            .enumerate()
            .filter_map(|(j, s)| {
                s.as_ref()
                    .map(|st| mo.backward[j].len() - st.remaining.len())
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use crate::patterns::PatternId;

    #[test]
    fn paper_fig7_shape() {
        // Fig. 7: square u0-u1-u2, u0-u1-u3 with u2, u3 both adjacent to
        // exactly {u0, u1} — candidates of the second one reuse the first.
        let p = Pattern::from_edges(4, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)]);
        let mo = MatchingOrder::compute(&p);
        let plan = ReusePlan::compute(&mo);
        // Position 3's backward set equals position 2's.
        let step = plan.steps[3].as_ref().expect("reuse expected");
        assert_eq!(step.source, 2);
        assert!(step.remaining.is_empty());
        assert_eq!(plan.operands_saved(&mo), 2);
    }

    #[test]
    fn clique_reuses_prefix() {
        // K5: B(u_2) = {0,1} ⊆ B(u_3) = {0,1,2}, so position 3 can seed
        // from level 2 and only intersect with N(match at 2).
        let mo = MatchingOrder::compute(&PatternId(7).pattern());
        let plan = ReusePlan::compute(&mo);
        let step = plan.steps[3].as_ref().expect("clique must reuse");
        assert_eq!(step.source, 2);
        assert_eq!(step.remaining, vec![2]);
        // Position 4 prefers the largest subset source (position 3).
        let step4 = plan.steps[4].as_ref().unwrap();
        assert_eq!(step4.source, 3);
        assert_eq!(step4.remaining, vec![3]);
    }

    #[test]
    fn hexagon_has_no_reuse() {
        // C6 backward sets are tiny and disjoint along the greedy order.
        let mo = MatchingOrder::compute(&PatternId(8).pattern());
        let plan = ReusePlan::compute(&mo);
        // Whatever the order, sources must save ≥1 operand; assert
        // consistency rather than a fixed shape.
        for (j, step) in plan.steps.iter().enumerate() {
            if let Some(s) = step {
                assert!(s.source >= 2 && s.source < j);
                assert!(mo.backward[j].len() > s.remaining.len());
            }
        }
    }

    #[test]
    fn remaining_disjoint_from_source() {
        for id in PatternId::all() {
            let mo = MatchingOrder::compute(&id.pattern());
            let plan = ReusePlan::compute(&mo);
            for (j, step) in plan.steps.iter().enumerate() {
                if let Some(s) = step {
                    for &r in &s.remaining {
                        assert!(mo.backward[j].contains(&r));
                        assert!(!mo.backward[s.source].contains(&r), "{}", id.name());
                    }
                    // source's backward ⊆ j's backward
                    for b in &mo.backward[s.source] {
                        assert!(mo.backward[j].contains(b));
                    }
                }
            }
        }
    }

    #[test]
    fn positions_before_three_never_reuse() {
        for id in PatternId::all() {
            let mo = MatchingOrder::compute(&id.pattern());
            let plan = ReusePlan::compute(&mo);
            for step in plan.steps.iter().take(3.min(plan.steps.len())) {
                assert!(step.is_none());
            }
        }
    }
}
