//! Symmetry-breaking constraint generation.
//!
//! The paper breaks pattern symmetry by generating "constraints between
//! vertices" of the form `id(u_i) < id(u_j)` (§I, Fig. 1 discussion) from
//! the automorphism group — the standard orbit-fixing scheme also used by
//! GraphZero and Pangolin:
//!
//! 1. compute `A = Aut(G_Q)`;
//! 2. while `|A| > 1`: pick the smallest vertex `v` with a non-trivial
//!    orbit; for every other `w` in `orbit_A(v)` emit the constraint
//!    `id(v) < id(w)`; replace `A` by the stabilizer of `v`.
//!
//! Each embedding class of size `|Aut(G_Q)|` then has exactly one
//! representative satisfying all constraints, so
//! `matches_without_constraints = matches_with_constraints × |Aut|` —
//! an identity the integration tests assert.

use crate::automorphism::{automorphisms, orbit_of, stabilizer, Permutation};
use crate::pattern::Pattern;

/// An ordering constraint `id(small) < id(large)` between the data
/// vertices matched to two pattern vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Pattern vertex whose match must take the smaller data-vertex id.
    pub small: usize,
    /// Pattern vertex whose match must take the larger data-vertex id.
    pub large: usize,
}

/// Symmetry-breaking result: the constraints plus the automorphism-group
/// size they neutralize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymmetryBreaking {
    /// Pairwise `<` constraints over pattern vertices.
    pub constraints: Vec<Constraint>,
    /// `|Aut(G_Q)|`.
    pub aut_size: usize,
}

impl SymmetryBreaking {
    /// Computes constraints for `p` via orbit fixing.
    pub fn compute(p: &Pattern) -> Self {
        let full = automorphisms(p);
        let aut_size = full.len();
        let mut group: Vec<Permutation> = full;
        let mut constraints = Vec::new();
        while group.len() > 1 {
            let n = p.num_vertices();
            let v = (0..n)
                .find(|&v| orbit_of(&group, v).len() > 1)
                .expect("non-trivial group must move some vertex");
            for w in orbit_of(&group, v) {
                if w != v {
                    constraints.push(Constraint { small: v, large: w });
                }
            }
            group = stabilizer(&group, v);
        }
        Self {
            constraints,
            aut_size,
        }
    }

    /// Checks a full assignment `m` (`m[u]` = data vertex for pattern
    /// vertex `u`) against every constraint. Used by the reference
    /// matcher and tests; the engine compiles constraints into its plan
    /// instead.
    pub fn satisfied(&self, m: &[u32]) -> bool {
        self.constraints.iter().all(|c| m[c.small] < m[c.large])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PatternId;

    #[test]
    fn asymmetric_pattern_needs_no_constraints() {
        // Labeled K4 (distinct labels) has trivial Aut.
        let sb = SymmetryBreaking::compute(&PatternId(13).pattern());
        assert_eq!(sb.aut_size, 1);
        assert!(sb.constraints.is_empty());
    }

    #[test]
    fn k4_fully_ordered() {
        let sb = SymmetryBreaking::compute(&PatternId(2).pattern());
        assert_eq!(sb.aut_size, 24);
        // Fixing K4 requires a total order: 3 + 2 + 1 = 6 constraints.
        assert_eq!(sb.constraints.len(), 6);
        assert!(sb.satisfied(&[1, 2, 3, 4]));
        assert!(!sb.satisfied(&[2, 1, 3, 4]));
    }

    #[test]
    fn constraints_reference_valid_vertices() {
        for id in PatternId::all() {
            let p = id.pattern();
            let sb = SymmetryBreaking::compute(&p);
            for c in &sb.constraints {
                assert!(c.small < p.num_vertices());
                assert!(c.large < p.num_vertices());
                assert_ne!(c.small, c.large);
            }
        }
    }

    #[test]
    fn exactly_one_representative_per_orbit() {
        // Enumerate all injective assignments of a small universe to the
        // pattern that are embeddings of the pattern into a clique (i.e.
        // any injective map works structurally for these checks), then
        // verify that among the |Aut| permuted variants of any assignment
        // exactly one satisfies the constraints.
        for id in [1u8, 2, 8, 9, 10] {
            let p = PatternId(id).pattern();
            let sb = SymmetryBreaking::compute(&p);
            let auts = crate::automorphism::automorphisms(&p);
            let n = p.num_vertices();
            // A fixed injective base assignment u -> u+10.
            let base: Vec<u32> = (0..n as u32).map(|u| u + 10).collect();
            let mut satisfying = 0;
            for a in &auts {
                // Assignment where pattern vertex u maps to base[a[u]].
                let m: Vec<u32> = (0..n).map(|u| base[a[u]]).collect();
                if sb.satisfied(&m) {
                    satisfying += 1;
                }
            }
            assert_eq!(satisfying, 1, "P{id}: one representative per class");
        }
    }

    #[test]
    fn hexagon_aut_size() {
        let sb = SymmetryBreaking::compute(&PatternId(8).pattern());
        assert_eq!(sb.aut_size, 12);
        assert!(!sb.constraints.is_empty());
    }
}
