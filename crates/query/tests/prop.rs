//! Randomized tests for query planning (internal-PRNG driven): random
//! connected patterns must yield valid orders, true automorphism groups,
//! sound symmetry constraints and sound reuse plans.

use tdfs_graph::rng::Rng;
use tdfs_query::automorphism::automorphisms;
use tdfs_query::order::MatchingOrder;
use tdfs_query::plan::QueryPlan;
use tdfs_query::reuse::ReusePlan;
use tdfs_query::symmetry::SymmetryBreaking;
use tdfs_query::Pattern;

const CASES: u64 = 64;

/// Random connected pattern on 3–7 vertices: a random spanning tree plus
/// random extra edges.
fn random_pattern(rng: &mut Rng) -> Pattern {
    let n = rng.gen_range(3..8);
    let mut edges = Vec::new();
    // Spanning tree: vertex v > 0 attaches to a parent below it.
    for v in 1..n {
        edges.push((v, rng.gen_range(0..v)));
    }
    for _ in 0..rng.gen_range(0..n * 2) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.push((a, b));
        }
    }
    Pattern::from_edges(n, &edges)
}

#[test]
fn order_is_valid() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x04DE + case);
        let p = random_pattern(&mut rng);
        let mo = MatchingOrder::compute(&p);
        let n = p.num_vertices();
        let mut seen = vec![false; n];
        for &u in &mo.order {
            assert!(!seen[u]);
            seen[u] = true;
        }
        assert!(seen.into_iter().all(|s| s));
        for i in 1..n {
            assert!(!mo.backward[i].is_empty(), "connectivity broken at {i}");
            for &j in &mo.backward[i] {
                assert!(p.has_edge(mo.order[i], mo.order[j]));
            }
        }
    }
}

#[test]
fn automorphisms_form_a_group() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xA07 + case);
        let p = random_pattern(&mut rng);
        let auts = automorphisms(&p);
        let n = p.num_vertices();
        // Every element preserves adjacency.
        for a in &auts {
            for u in 0..n {
                for v in 0..n {
                    assert_eq!(p.has_edge(u, v), p.has_edge(a[u], a[v]));
                }
            }
        }
        // Closure under inverse (finite group axioms).
        for a in &auts {
            let mut inv = vec![0usize; n];
            for (x, &ax) in a.iter().enumerate() {
                inv[ax] = x;
            }
            assert!(auts.contains(&inv));
        }
        // Group order divides n! (Lagrange on S_n).
        let fact: usize = (1..=n).product();
        assert_eq!(fact % auts.len(), 0);
    }
}

#[test]
fn symmetry_selects_exactly_one_representative() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5E1 + case);
        let p = random_pattern(&mut rng);
        let sb = SymmetryBreaking::compute(&p);
        let auts = automorphisms(&p);
        let n = p.num_vertices();
        // For an arbitrary injective assignment, exactly one permuted
        // variant satisfies the constraints.
        let base: Vec<u32> = (0..n as u32).map(|u| u * 7 + 3).collect();
        let satisfying = auts
            .iter()
            .filter(|a| {
                let m: Vec<u32> = (0..n).map(|u| base[a[u]]).collect();
                sb.satisfied(&m)
            })
            .count();
        assert_eq!(satisfying, 1);
    }
}

#[test]
fn reuse_sources_are_proper_subsets() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x4E5E + case);
        let p = random_pattern(&mut rng);
        let mo = MatchingOrder::compute(&p);
        let plan = ReusePlan::compute(&mo);
        for (j, step) in plan.steps.iter().enumerate() {
            if let Some(s) = step {
                assert!(s.source >= 2 && s.source < j);
                // B(source) ⊆ B(j) and remaining = B(j) \ B(source).
                for b in &mo.backward[s.source] {
                    assert!(mo.backward[j].contains(b));
                    assert!(!s.remaining.contains(b));
                }
                let expect_len = mo.backward[j].len() - mo.backward[s.source].len();
                assert_eq!(s.remaining.len(), expect_len);
            }
        }
    }
}

#[test]
fn compiled_plan_matches_raw_constraints() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xC120 + case);
        let p = random_pattern(&mut rng);
        let plan = QueryPlan::build(&p);
        let sb = SymmetryBreaking::compute(&p);
        let n = p.num_vertices();
        let auts = automorphisms(&p);
        assert_eq!(plan.aut_size, auts.len());
        // Probe with permuted assignments.
        for a in auts.iter().take(8) {
            let by_vertex: Vec<u32> = (0..n).map(|u| a[u] as u32 + 1).collect();
            let by_pos: Vec<u32> = (0..n).map(|i| by_vertex[plan.order.order[i]]).collect();
            assert_eq!(
                plan.constraints_satisfied(&by_pos),
                sb.satisfied(&by_vertex)
            );
        }
    }
}
