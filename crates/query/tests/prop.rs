//! Property-based tests for query planning: random connected patterns
//! must yield valid orders, true automorphism groups, sound symmetry
//! constraints and sound reuse plans.

use proptest::prelude::*;
use tdfs_query::automorphism::automorphisms;
use tdfs_query::order::MatchingOrder;
use tdfs_query::plan::QueryPlan;
use tdfs_query::reuse::ReusePlan;
use tdfs_query::symmetry::SymmetryBreaking;
use tdfs_query::Pattern;

/// Random connected pattern on 3–7 vertices: a random spanning tree plus
/// random extra edges.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    (3usize..=7)
        .prop_flat_map(|n| {
            let tree = prop::collection::vec(0usize..n, n - 1);
            let extra = prop::collection::vec((0usize..n, 0usize..n), 0..n * 2);
            (Just(n), tree, extra)
        })
        .prop_map(|(n, tree, extra)| {
            let mut edges = Vec::new();
            // Spanning tree: vertex v > 0 attaches to a parent below it.
            for v in 1..n {
                edges.push((v, tree[v - 1] % v));
            }
            for (a, b) in extra {
                if a != b {
                    edges.push((a, b));
                }
            }
            Pattern::from_edges(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn order_is_valid(p in arb_pattern()) {
        let mo = MatchingOrder::compute(&p);
        let n = p.num_vertices();
        let mut seen = vec![false; n];
        for &u in &mo.order {
            prop_assert!(!seen[u]);
            seen[u] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
        for i in 1..n {
            prop_assert!(!mo.backward[i].is_empty(), "connectivity broken at {i}");
            for &j in &mo.backward[i] {
                prop_assert!(p.has_edge(mo.order[i], mo.order[j]));
            }
        }
    }

    #[test]
    fn automorphisms_form_a_group(p in arb_pattern()) {
        let auts = automorphisms(&p);
        let n = p.num_vertices();
        // Every element preserves adjacency.
        for a in &auts {
            for u in 0..n {
                for v in 0..n {
                    prop_assert_eq!(p.has_edge(u, v), p.has_edge(a[u], a[v]));
                }
            }
        }
        // Closure under composition and inverse (finite group axioms).
        for a in &auts {
            let mut inv = vec![0usize; n];
            for (x, &ax) in a.iter().enumerate() {
                inv[ax] = x;
            }
            prop_assert!(auts.contains(&inv));
        }
        // Group order divides n! (Lagrange on S_n).
        let fact: usize = (1..=n).product();
        prop_assert_eq!(fact % auts.len(), 0);
    }

    #[test]
    fn symmetry_selects_exactly_one_representative(p in arb_pattern()) {
        let sb = SymmetryBreaking::compute(&p);
        let auts = automorphisms(&p);
        let n = p.num_vertices();
        // For an arbitrary injective assignment, exactly one permuted
        // variant satisfies the constraints.
        let base: Vec<u32> = (0..n as u32).map(|u| u * 7 + 3).collect();
        let satisfying = auts
            .iter()
            .filter(|a| {
                let m: Vec<u32> = (0..n).map(|u| base[a[u]]).collect();
                sb.satisfied(&m)
            })
            .count();
        prop_assert_eq!(satisfying, 1);
    }

    #[test]
    fn reuse_sources_are_proper_subsets(p in arb_pattern()) {
        let mo = MatchingOrder::compute(&p);
        let plan = ReusePlan::compute(&mo);
        for (j, step) in plan.steps.iter().enumerate() {
            if let Some(s) = step {
                prop_assert!(s.source >= 2 && s.source < j);
                // B(source) ⊆ B(j) and remaining = B(j) \ B(source).
                for b in &mo.backward[s.source] {
                    prop_assert!(mo.backward[j].contains(b));
                    prop_assert!(!s.remaining.contains(b));
                }
                let expect_len = mo.backward[j].len() - mo.backward[s.source].len();
                prop_assert_eq!(s.remaining.len(), expect_len);
            }
        }
    }

    #[test]
    fn compiled_plan_matches_raw_constraints(p in arb_pattern()) {
        let plan = QueryPlan::build(&p);
        let sb = SymmetryBreaking::compute(&p);
        let n = p.num_vertices();
        prop_assert_eq!(plan.aut_size, automorphisms(&p).len());
        // Probe with permuted assignments.
        let auts = automorphisms(&p);
        for a in auts.iter().take(8) {
            let by_vertex: Vec<u32> = (0..n).map(|u| a[u] as u32 + 1).collect();
            let by_pos: Vec<u32> = (0..n).map(|i| by_vertex[plan.order.order[i]]).collect();
            prop_assert_eq!(plan.constraints_satisfied(&by_pos), sb.satisfied(&by_vertex));
        }
    }
}
