//! The LRU plan cache.
//!
//! Query planning (matching order, automorphisms, symmetry constraints,
//! reuse analysis) is pure in the pattern and the plan options, so
//! plans are shared across queries. The cache is keyed by (graph name,
//! canonical pattern, plan options): the graph name is part of the key
//! because a served deployment typically runs a small set of recurring
//! patterns *per graph*, and scoping eviction that way keeps one
//! graph's burst from evicting another's working set.
//!
//! Eviction is least-recently-used via a monotonic touch tick; with the
//! small capacities a service uses (tens of entries) the O(len) scan on
//! eviction is cheaper than maintaining an intrusive list.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tdfs_query::plan::{PlanOptions, QueryPlan};
use tdfs_query::Pattern;

use crate::canon::PatternKey;

/// Full cache key: graph, graph version, canonical pattern, plan options.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanCacheKey {
    /// Catalog name of the data graph.
    pub graph: String,
    /// [`GraphVersion`](tdfs_graph::GraphVersion) of the catalog entry
    /// the plan was built against. Plans are pure in the pattern, but a
    /// future planner may consult data-graph statistics (degree
    /// distributions, label frequencies), so entries built against a
    /// superseded version must never be served for the current one —
    /// the version in the key discriminates them, and `Service::apply`
    /// eagerly drops the stale generation.
    pub version: u64,
    /// Canonical (or raw-fallback) pattern encoding.
    pub pattern: PatternKey,
    /// Plan options, destructured for hashing.
    pub symmetry_breaking: bool,
    /// See [`PlanOptions::intersection_reuse`].
    pub intersection_reuse: bool,
}

impl PlanCacheKey {
    /// Builds the key for a (graph, version, pattern, options) tuple.
    pub fn of(graph: &str, version: u64, pattern: &Pattern, options: PlanOptions) -> Self {
        Self {
            graph: graph.to_owned(),
            version,
            pattern: PatternKey::of(pattern),
            symmetry_breaking: options.symmetry_breaking,
            intersection_reuse: options.intersection_reuse,
        }
    }
}

struct Entry {
    plan: Arc<QueryPlan>,
    touched: u64,
}

/// Cache counters (monotonic).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that returned a usable cached plan.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Hits whose cached plan was built from an isomorphic but
    /// differently-numbered presentation and therefore rebuilt (see
    /// [`PlanCache::get_or_build`]).
    pub presentation_rebuilds: u64,
}

/// Bounded LRU map from [`PlanCacheKey`] to compiled plans.
pub struct PlanCache {
    capacity: usize,
    map: Mutex<HashMap<PlanCacheKey, Entry>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    presentation_rebuilds: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding up to `capacity` plans (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            map: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            presentation_rebuilds: AtomicU64::new(0),
        }
    }

    /// Returns the plan for (`graph`, `pattern`, `options`), building
    /// and inserting it on a miss.
    ///
    /// Correctness note: a cached plan embeds the *exact* pattern it was
    /// built from, and emitted assignments map back to that pattern's
    /// vertex numbering. A canonical-key hit whose stored plan came from
    /// a differently-numbered isomorphic presentation is therefore not
    /// served as-is — the plan is rebuilt for the requested presentation
    /// (and replaces the entry), counted in
    /// [`PlanCacheStats::presentation_rebuilds`].
    pub fn get_or_build(
        &self,
        graph: &str,
        version: u64,
        pattern: &Pattern,
        options: PlanOptions,
    ) -> Arc<QueryPlan> {
        let key = PlanCacheKey::of(graph, version, pattern, options);
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        {
            let mut map = self.map.lock().expect("plan cache poisoned");
            if let Some(e) = map.get_mut(&key) {
                if e.plan.pattern == *pattern {
                    e.touched = now;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return e.plan.clone();
                }
                self.presentation_rebuilds.fetch_add(1, Ordering::Relaxed);
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Build outside the lock: planning is pure and racing builders
        // at worst duplicate work for one pattern.
        let plan = Arc::new(QueryPlan::build_with(pattern, options));
        let mut map = self.map.lock().expect("plan cache poisoned");
        if map.len() >= self.capacity && !map.contains_key(&key) {
            if let Some(oldest) = map
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k.clone())
            {
                map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(
            key,
            Entry {
                plan: plan.clone(),
                touched: now,
            },
        );
        plan
    }

    /// Drops every cached plan for `graph` (e.g. after unregistering).
    pub fn invalidate_graph(&self, graph: &str) {
        self.map
            .lock()
            .expect("plan cache poisoned")
            .retain(|k, _| k.graph != graph);
    }

    /// Drops cached plans for `graph` built against a version `<
    /// current` — the eager half of version discrimination, run by
    /// `Service::apply` at commit so superseded entries free their
    /// slots immediately instead of aging out through LRU.
    pub fn invalidate_graph_below(&self, graph: &str, current: u64) {
        self.map
            .lock()
            .expect("plan cache poisoned")
            .retain(|k, _| k.graph != graph || k.version >= current);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.lock().expect("plan cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            presentation_rebuilds: self.presentation_rebuilds.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> PlanOptions {
        PlanOptions::default()
    }

    #[test]
    fn hit_after_miss() {
        let c = PlanCache::new(4);
        let p = Pattern::cycle(4);
        let a = c.get_or_build("g", 0, &p, opts());
        let b = c.get_or_build("g", 0, &p, opts());
        assert!(Arc::ptr_eq(&a, &b));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn distinct_graphs_and_options_are_distinct_slots() {
        let c = PlanCache::new(8);
        let p = Pattern::cycle(4);
        c.get_or_build("g1", 0, &p, opts());
        c.get_or_build("g2", 0, &p, opts());
        c.get_or_build(
            "g1",
            0,
            &p,
            PlanOptions {
                symmetry_breaking: false,
                intersection_reuse: true,
            },
        );
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = PlanCache::new(2);
        let p3 = Pattern::path(3);
        let p4 = Pattern::path(4);
        let p5 = Pattern::path(5);
        c.get_or_build("g", 0, &p3, opts());
        c.get_or_build("g", 0, &p4, opts());
        c.get_or_build("g", 0, &p3, opts()); // touch p3: p4 is now LRU
        c.get_or_build("g", 0, &p5, opts()); // evicts p4
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        c.get_or_build("g", 0, &p3, opts()); // still cached
        assert_eq!(c.stats().hits, 2);
        c.get_or_build("g", 0, &p4, opts()); // was evicted: miss
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn isomorphic_presentation_rebuilds_exact_plan() {
        let c = PlanCache::new(4);
        let a = Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let b = Pattern::from_edges(4, &[(2, 3), (3, 0), (0, 1), (1, 2), (3, 1)]);
        let pa = c.get_or_build("g", 0, &a, opts());
        let pb = c.get_or_build("g", 0, &b, opts());
        assert_eq!(pa.pattern, a);
        assert_eq!(pb.pattern, b, "plan must match the requested presentation");
        assert_eq!(c.len(), 1, "isomorphic presentations share one slot");
        assert_eq!(c.stats().presentation_rebuilds, 1);
    }

    #[test]
    fn versions_are_distinct_slots_and_stale_ones_invalidate() {
        let c = PlanCache::new(8);
        let p = Pattern::cycle(4);
        let v0 = c.get_or_build("g", 0, &p, opts());
        let v1 = c.get_or_build("g", 1, &p, opts());
        assert!(!Arc::ptr_eq(&v0, &v1), "versions never share an entry");
        assert_eq!(c.len(), 2);
        c.get_or_build("other", 0, &p, opts());
        c.invalidate_graph_below("g", 1);
        assert_eq!(c.len(), 2, "only g@0 dropped; g@1 and other@0 stay");
        let v1_again = c.get_or_build("g", 1, &p, opts());
        assert!(Arc::ptr_eq(&v1, &v1_again));
    }

    #[test]
    fn invalidate_graph_clears_only_that_graph() {
        let c = PlanCache::new(8);
        c.get_or_build("a", 0, &Pattern::cycle(3), opts());
        c.get_or_build("b", 0, &Pattern::cycle(3), opts());
        c.invalidate_graph("a");
        assert_eq!(c.len(), 1);
    }
}
