//! Canonical pattern encodings for plan-cache keys.
//!
//! Two isomorphic patterns should hit the same cache slot even when the
//! client numbers their vertices differently. Query patterns are tiny
//! (≤ 32 vertices by construction, ≤ 8 in the paper's workload), so
//! exact canonicalization by bounded permutation search is affordable:
//! vertices are first refined into (degree, label) classes — any
//! isomorphism must respect them — and the minimum encoding over all
//! class-respecting permutations is the canonical form. When the class
//! structure is too degenerate (the permutation count exceeds
//! [`CANON_BUDGET`]), we fall back to the raw as-given encoding: the
//! cache then simply treats differently-presented isomorphic patterns
//! as distinct keys, which costs a duplicate entry but never
//! correctness.

use tdfs_query::Pattern;

/// Maximum number of class-respecting permutations to enumerate before
/// falling back to the raw encoding.
pub const CANON_BUDGET: usize = 50_000;

/// A hashable pattern encoding: vertex count, per-vertex labels, and
/// adjacency bitmasks, all in encoding order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternKey {
    /// `true` when the exact canonical form was computed; `false` for
    /// the raw-encoding fallback.
    pub canonical: bool,
    encoded: Vec<u64>,
}

/// Encodes `p` with vertex `u` renamed to `perm[u]`.
fn encode_permuted(p: &Pattern, perm: &[usize]) -> Vec<u64> {
    let n = p.num_vertices();
    let mut adj = vec![0u64; n];
    let mut labels = vec![0u64; n];
    for u in 0..n {
        labels[perm[u]] = u64::from(p.label(u));
        for v in p.neighbors(u) {
            adj[perm[u]] |= 1 << perm[v];
        }
    }
    let mut out = Vec::with_capacity(1 + 2 * n);
    out.push(n as u64);
    out.extend_from_slice(&labels);
    out.extend_from_slice(&adj);
    out
}

/// Vertex classes under the (degree, label) invariant, each class
/// sorted; classes ordered by their invariant so isomorphic patterns
/// produce aligned class structures.
fn refine_classes(p: &Pattern) -> Vec<Vec<usize>> {
    let n = p.num_vertices();
    let mut keyed: Vec<(usize, u32, usize)> =
        (0..n).map(|u| (p.degree(u), p.label(u), u)).collect();
    keyed.sort();
    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut prev: Option<(usize, u32)> = None;
    for (d, l, u) in keyed {
        if prev != Some((d, l)) {
            classes.push(Vec::new());
            prev = Some((d, l));
        }
        classes.last_mut().unwrap().push(u);
    }
    classes
}

fn factorial(n: usize) -> usize {
    (1..=n).product()
}

/// Enumerates every class-respecting permutation, invoking `visit` with
/// `perm` where `perm[u]` is the new index of vertex `u`.
fn for_each_class_permutation(classes: &[Vec<usize>], visit: &mut impl FnMut(&[usize])) {
    let n: usize = classes.iter().map(Vec::len).sum();
    // Target index ranges: class i occupies a contiguous block.
    let mut perm = vec![0usize; n];
    // Per-class permutation state: orders[i] is the current arrangement
    // of class i's members; we iterate the mixed-radix product space by
    // recursing over classes.
    fn rec(
        classes: &[Vec<usize>],
        class_idx: usize,
        base: usize,
        perm: &mut [usize],
        visit: &mut impl FnMut(&[usize]),
    ) {
        match classes.get(class_idx) {
            None => visit(perm),
            Some(members) => {
                let mut members = members.clone();
                permute_rec(&mut members, 0, &mut |arrangement| {
                    for (offset, &u) in arrangement.iter().enumerate() {
                        perm[u] = base + offset;
                    }
                    rec(
                        classes,
                        class_idx + 1,
                        base + arrangement.len(),
                        perm,
                        visit,
                    );
                });
            }
        }
    }
    // Heap-style in-place permutation enumeration.
    fn permute_rec(items: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
        if k + 1 >= items.len() {
            visit(items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute_rec(items, k + 1, visit);
            items.swap(k, i);
        }
    }
    rec(classes, 0, 0, &mut perm, visit);
}

impl PatternKey {
    /// Computes the cache key for `p`: the canonical encoding when the
    /// search fits in [`CANON_BUDGET`], the raw encoding otherwise.
    pub fn of(p: &Pattern) -> Self {
        let classes = refine_classes(p);
        let span: usize = classes.iter().map(|c| factorial(c.len())).product();
        if span > CANON_BUDGET {
            let identity: Vec<usize> = (0..p.num_vertices()).collect();
            return Self {
                canonical: false,
                encoded: encode_permuted(p, &identity),
            };
        }
        let mut best: Option<Vec<u64>> = None;
        for_each_class_permutation(&classes, &mut |perm| {
            let enc = encode_permuted(p, perm);
            if best.as_ref().is_none_or(|b| enc < *b) {
                best = Some(enc);
            }
        });
        Self {
            canonical: true,
            encoded: best.expect("at least the identity permutation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isomorphic_presentations_share_a_key() {
        // The diamond (4-cycle plus a chord), presented two ways.
        let a = Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let b = Pattern::from_edges(4, &[(2, 3), (3, 0), (0, 1), (1, 2), (3, 1)]);
        let ka = PatternKey::of(&a);
        let kb = PatternKey::of(&b);
        assert!(ka.canonical && kb.canonical);
        assert_eq!(ka, kb);
    }

    #[test]
    fn non_isomorphic_patterns_differ() {
        let path = Pattern::path(4);
        let star = Pattern::star(3);
        let cycle = Pattern::cycle(4);
        let kp = PatternKey::of(&path);
        let ks = PatternKey::of(&star);
        let kc = PatternKey::of(&cycle);
        assert_ne!(kp, ks);
        assert_ne!(kp, kc);
        assert_ne!(ks, kc);
    }

    #[test]
    fn labels_distinguish() {
        let plain = Pattern::cycle(4);
        let labeled = Pattern::cycle(4).with_mod_labels(2);
        assert_ne!(PatternKey::of(&plain), PatternKey::of(&labeled));
    }

    #[test]
    fn labeled_isomorphs_share_a_key() {
        // A path labeled 0-1-0 is isomorphic to its reversal.
        let a = Pattern::from_edges_labeled(3, &[(0, 1), (1, 2)], vec![0, 1, 0]);
        let b = Pattern::from_edges_labeled(3, &[(2, 1), (1, 0)], vec![0, 1, 0]);
        assert_eq!(PatternKey::of(&a), PatternKey::of(&b));
    }

    #[test]
    fn clique_canonicalizes_within_budget() {
        // K7: one class of 7 vertices → 5040 permutations, within budget.
        let k = Pattern::clique(7);
        assert!(PatternKey::of(&k).canonical);
    }

    #[test]
    fn degenerate_class_falls_back_to_raw() {
        // A 9-clique has 9! = 362880 class permutations > budget.
        let k = Pattern::clique(9);
        let key = PatternKey::of(&k);
        assert!(!key.canonical);
        // Fallback keys still work as exact-presentation keys.
        assert_eq!(key, PatternKey::of(&Pattern::clique(9)));
    }
}
