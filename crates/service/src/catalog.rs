//! The graph catalog: named, shared, immutable data graphs.
//!
//! Queries address graphs by name; the catalog hands out `Arc` clones so
//! a graph stays alive for every in-flight query even if it is
//! unregistered (or replaced) mid-run. Registration is cheap — graphs
//! are never copied.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use tdfs_graph::CsrGraph;

/// Thread-safe name → graph registry.
#[derive(Default)]
pub struct GraphCatalog {
    graphs: RwLock<HashMap<String, Arc<CsrGraph>>>,
}

impl GraphCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `graph` under `name`, returning the previous graph with
    /// that name, if any. In-flight queries against a replaced graph
    /// keep their own `Arc` and finish against the old snapshot.
    pub fn register(&self, name: impl Into<String>, graph: Arc<CsrGraph>) -> Option<Arc<CsrGraph>> {
        self.graphs
            .write()
            .expect("catalog poisoned")
            .insert(name.into(), graph)
    }

    /// Removes the graph named `name`, returning it if it was present.
    pub fn unregister(&self, name: &str) -> Option<Arc<CsrGraph>> {
        self.graphs.write().expect("catalog poisoned").remove(name)
    }

    /// Looks up a graph by name.
    pub fn get(&self, name: &str) -> Option<Arc<CsrGraph>> {
        self.graphs
            .read()
            .expect("catalog poisoned")
            .get(name)
            .cloned()
    }

    /// Whether a graph named `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.graphs
            .read()
            .expect("catalog poisoned")
            .contains_key(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .graphs
            .read()
            .expect("catalog poisoned")
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.read().expect("catalog poisoned").len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfs_graph::GraphBuilder;

    fn triangle() -> Arc<CsrGraph> {
        let mut b = GraphBuilder::new();
        b.push_edge(0, 1);
        b.push_edge(1, 2);
        b.push_edge(0, 2);
        Arc::new(b.build())
    }

    #[test]
    fn register_get_unregister() {
        let c = GraphCatalog::new();
        assert!(c.is_empty());
        assert!(c.register("t", triangle()).is_none());
        assert!(c.contains("t"));
        assert_eq!(c.names(), vec!["t".to_string()]);
        let g = c.get("t").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert!(c.unregister("t").is_some());
        assert!(c.get("t").is_none());
    }

    #[test]
    fn replacement_returns_old_and_old_arcs_survive() {
        let c = GraphCatalog::new();
        c.register("g", triangle());
        let held = c.get("g").unwrap();
        let old = c.register("g", triangle()).unwrap();
        assert!(Arc::ptr_eq(&held, &old));
        assert!(!Arc::ptr_eq(&held, &c.get("g").unwrap()));
        assert_eq!(held.num_vertices(), 3);
    }
}
