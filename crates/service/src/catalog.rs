//! The graph catalog: named, shared, versioned data graphs.
//!
//! Queries address graphs by name; the catalog hands out `Arc` clones so
//! a graph stays alive for every in-flight query even if it is
//! unregistered (or replaced) mid-run. Registration is cheap — graphs
//! are never copied.
//!
//! Since the batch-dynamic subsystem, entries are [`DeltaCsr`] *views*
//! rather than raw CSR: an immutable base plus copy-on-write edge
//! deltas, stamped with a monotone [`GraphVersion`]. A static workload
//! is just the version-0 view over its base (zero overlay, zero extra
//! indirection in the engines thanks to `GraphView` monomorphization).
//! Mutation never edits an entry in place — `Service::apply` builds the
//! successor view and [`swap`](GraphCatalog::swap)s it in, so in-flight
//! queries keep enumerating their own frozen snapshot.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use tdfs_graph::{CsrGraph, DeltaCsr};

/// Thread-safe name → versioned-graph registry.
#[derive(Default)]
pub struct GraphCatalog {
    graphs: RwLock<HashMap<String, Arc<DeltaCsr>>>,
}

impl GraphCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `graph` under `name`, returning the previous graph with
    /// that name, if any. In-flight queries against a replaced graph
    /// keep their own `Arc` and finish against the old snapshot.
    pub fn register(&self, name: impl Into<String>, graph: Arc<DeltaCsr>) -> Option<Arc<DeltaCsr>> {
        self.graphs
            .write()
            .expect("catalog poisoned")
            .insert(name.into(), graph)
    }

    /// Registers an immutable CSR as the version-0 view under `name`.
    pub fn register_base(
        &self,
        name: impl Into<String>,
        base: Arc<CsrGraph>,
    ) -> Option<Arc<DeltaCsr>> {
        self.register(name, Arc::new(DeltaCsr::from_base(base)))
    }

    /// Atomically replaces the entry named `name` with `next` *iff* the
    /// entry still is `expected` (pointer identity) — the commit step of
    /// `Service::apply`. Returns `false` without modifying anything if
    /// the entry was concurrently unregistered or replaced.
    pub fn swap(&self, name: &str, expected: &Arc<DeltaCsr>, next: Arc<DeltaCsr>) -> bool {
        let mut map = self.graphs.write().expect("catalog poisoned");
        match map.get_mut(name) {
            Some(slot) if Arc::ptr_eq(slot, expected) => {
                *slot = next;
                true
            }
            _ => false,
        }
    }

    /// Removes the graph named `name`, returning it if it was present.
    pub fn unregister(&self, name: &str) -> Option<Arc<DeltaCsr>> {
        self.graphs.write().expect("catalog poisoned").remove(name)
    }

    /// Looks up a graph by name.
    pub fn get(&self, name: &str) -> Option<Arc<DeltaCsr>> {
        self.graphs
            .read()
            .expect("catalog poisoned")
            .get(name)
            .cloned()
    }

    /// Whether a graph named `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.graphs
            .read()
            .expect("catalog poisoned")
            .contains_key(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .graphs
            .read()
            .expect("catalog poisoned")
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.read().expect("catalog poisoned").len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfs_graph::{EdgeBatch, GraphBuilder, GraphView};

    fn triangle() -> Arc<CsrGraph> {
        let mut b = GraphBuilder::new();
        b.push_edge(0, 1);
        b.push_edge(1, 2);
        b.push_edge(0, 2);
        Arc::new(b.build())
    }

    #[test]
    fn register_get_unregister() {
        let c = GraphCatalog::new();
        assert!(c.is_empty());
        assert!(c.register_base("t", triangle()).is_none());
        assert!(c.contains("t"));
        assert_eq!(c.names(), vec!["t".to_string()]);
        let g = c.get("t").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.version(), 0);
        assert!(c.unregister("t").is_some());
        assert!(c.get("t").is_none());
    }

    #[test]
    fn replacement_returns_old_and_old_arcs_survive() {
        let c = GraphCatalog::new();
        c.register_base("g", triangle());
        let held = c.get("g").unwrap();
        let old = c.register_base("g", triangle()).unwrap();
        assert!(Arc::ptr_eq(&held, &old));
        assert!(!Arc::ptr_eq(&held, &c.get("g").unwrap()));
        assert_eq!(held.num_vertices(), 3);
    }

    #[test]
    fn swap_is_conditional_on_identity() {
        let c = GraphCatalog::new();
        c.register_base("g", triangle());
        let cur = c.get("g").unwrap();
        let (next, _) = cur.apply(&EdgeBatch::new().delete(0, 2)).unwrap();
        let next = Arc::new(next);

        // A stale expectation must not clobber a concurrent replacement.
        let stale = Arc::new(DeltaCsr::from_base(triangle()));
        assert!(!c.swap("g", &stale, next.clone()));
        assert_eq!(c.get("g").unwrap().version(), 0);

        assert!(c.swap("g", &cur, next));
        let now = c.get("g").unwrap();
        assert_eq!(now.version(), 1);
        assert_eq!(now.num_edges(), 2);

        // Swapping an unregistered name is a no-op.
        assert!(!c.swap("missing", &cur, Arc::new(DeltaCsr::from_base(triangle()))));
    }
}
