//! The on-disk catalog: a service state directory that survives
//! restarts.
//!
//! Layout under one root directory:
//!
//! ```text
//! <root>/MANIFEST               # TDFSCATL: registered graph names
//! <root>/graphs/<name>.tdfsgrph # TDFSGRPH container (immutable base)
//! <root>/graphs/<name>.delta    # TDFSDELT: version + cumulative overlay
//! <root>/snapshots/<id>.tdfssnap# suspended-query checkpoints
//! <root>/tmp/                   # staging for atomic writes
//! ```
//!
//! **Crash consistency.** Every file is written via *tmp + atomic
//! rename*: bytes go to a staging file under `tmp/`, the file is
//! `sync_all`'d, then renamed into place. A crash mid-write (modeled by
//! the `catalog.write.midfile` fault point, which fires between the two
//! halves of the payload) therefore leaves only garbage under `tmp/` —
//! cleared on the next [`DiskCatalog::open`] — and never a torn
//! `MANIFEST`, container, delta or snapshot. Readers double-check
//! anyway: every format here carries magic + CRC32 (or, for snapshots,
//! the TDFSSNAP codec's own validation), so a torn file that somehow
//! reached its final name is a typed error, not a wrong graph.
//!
//! The delta sidecar (`TDFSDELT`) persists a [`DeltaCsr`]'s *cumulative*
//! effective overlay — normalized `u < v` insert/delete edge lists vs
//! the immutable container base — plus the [`GraphVersion`], so a
//! restarted service rebuilds the exact same view
//! ([`DeltaCsr::with_overlay`]) at the exact same version. Compaction
//! rewrites the container and shrinks the sidecar to an empty overlay
//! that still records the version.

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use tdfs_graph::container::crc32;
use tdfs_graph::{ContainerError, GraphVersion, VertexId};

/// Magic prefix of the `MANIFEST` file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"TDFSCATL";
/// Magic prefix of a `.delta` overlay sidecar.
pub const DELTA_MAGIC: &[u8; 8] = b"TDFSDELT";
/// On-disk format version of both (bumped together).
pub const DISK_VERSION: u16 = 1;

/// Why a storage operation failed. All typed — a corrupt or torn file
/// surfaces as an error, never a panic or a silently wrong catalog.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem error.
    Io(String),
    /// The graph name cannot be used as a file name (empty, too long,
    /// or containing characters outside `[A-Za-z0-9._-]`).
    BadName(String),
    /// `MANIFEST` is missing, torn, or fails its checksum.
    Manifest(&'static str),
    /// A graph container failed to open/verify.
    Container(ContainerError),
    /// A `.delta` overlay sidecar is torn or inconsistent.
    Delta { graph: String, reason: &'static str },
    /// The persisted overlay does not fit its container base.
    Overlay(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o: {e}"),
            StorageError::BadName(n) => write!(f, "graph name {n:?} is not storable"),
            StorageError::Manifest(r) => write!(f, "catalog manifest: {r}"),
            StorageError::Container(e) => write!(f, "graph container: {e}"),
            StorageError::Delta { graph, reason } => {
                write!(f, "delta sidecar for {graph:?}: {reason}")
            }
            StorageError::Overlay(e) => write!(f, "persisted overlay rejected: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

impl From<ContainerError> for StorageError {
    fn from(e: ContainerError) -> Self {
        StorageError::Container(e)
    }
}

/// A persisted overlay sidecar, decoded.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PersistedDelta {
    /// The catalog version the graph was at.
    pub version: GraphVersion,
    /// Cumulative effective inserts vs the container base (`u < v`).
    pub inserts: Vec<(VertexId, VertexId)>,
    /// Cumulative effective deletes vs the container base (`u < v`).
    pub deletes: Vec<(VertexId, VertexId)>,
}

/// Handle to a service state directory (see the module docs).
#[derive(Debug)]
pub struct DiskCatalog {
    root: PathBuf,
}

/// `name` must be safe to embed in a file name.
pub fn validate_name(name: &str) -> Result<(), StorageError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if ok {
        Ok(())
    } else {
        Err(StorageError::BadName(name.to_owned()))
    }
}

impl DiskCatalog {
    /// Opens `root` as a state directory, creating the layout (and an
    /// empty `MANIFEST`) if absent, and clearing any staging leftovers
    /// from a previous crash.
    pub fn open(root: impl Into<PathBuf>) -> Result<DiskCatalog, StorageError> {
        let root = root.into();
        fs::create_dir_all(root.join("graphs"))?;
        fs::create_dir_all(root.join("snapshots"))?;
        fs::create_dir_all(root.join("tmp"))?;
        let cat = DiskCatalog { root };
        // Torn staging files from a crash mid-write are garbage by
        // design; make sure they can never shadow real state.
        for entry in fs::read_dir(cat.root.join("tmp"))? {
            let _ = fs::remove_file(entry?.path());
        }
        if !cat.manifest_path().exists() {
            cat.write_manifest(&[])?;
        }
        Ok(cat)
    }

    /// The state directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("MANIFEST")
    }

    /// Path of the container for graph `name`.
    pub fn graph_path(&self, name: &str) -> PathBuf {
        self.root.join("graphs").join(format!("{name}.tdfsgrph"))
    }

    /// Path of the overlay sidecar for graph `name`.
    pub fn delta_path(&self, name: &str) -> PathBuf {
        self.root.join("graphs").join(format!("{name}.delta"))
    }

    /// Path of the snapshot checkpoint for suspended query `id`.
    pub fn snapshot_path(&self, id: u64) -> PathBuf {
        self.root.join("snapshots").join(format!("{id}.tdfssnap"))
    }

    /// Writes `bytes` to `final_path` atomically: staging file under
    /// `tmp/`, fsync, rename into place. The `catalog.write.midfile`
    /// fault point fires with half the payload written — a panic there
    /// models the torn-write crash the rename protocol makes invisible.
    pub fn write_atomic(&self, final_path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        let file_name = final_path
            .file_name()
            .ok_or(StorageError::Manifest("atomic write without a file name"))?;
        let tmp = self.root.join("tmp").join(file_name);
        {
            let mut f = File::create(&tmp)?;
            let mid = bytes.len() / 2;
            f.write_all(&bytes[..mid])?;
            crate::chaos_point!("catalog.write.midfile");
            f.write_all(&bytes[mid..])?;
            f.sync_all()?;
        }
        fs::rename(&tmp, final_path)?;
        Ok(())
    }

    // -- manifest ------------------------------------------------------

    /// Replaces the manifest with `names` (atomic).
    pub fn write_manifest(&self, names: &[String]) -> Result<(), StorageError> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(MANIFEST_MAGIC);
        buf.extend_from_slice(&DISK_VERSION.to_le_bytes());
        buf.extend_from_slice(&(names.len() as u32).to_le_bytes());
        for name in names {
            validate_name(name)?;
            buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        self.write_atomic(&self.manifest_path(), &buf)
    }

    /// Reads the registered graph names back (sorted as written).
    pub fn read_manifest(&self) -> Result<Vec<String>, StorageError> {
        let mut bytes = Vec::new();
        File::open(self.manifest_path())
            .map_err(|_| StorageError::Manifest("missing"))?
            .read_to_end(&mut bytes)?;
        if bytes.len() < MANIFEST_MAGIC.len() + 2 + 4 + 4 {
            return Err(StorageError::Manifest("truncated"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            return Err(StorageError::Manifest("checksum mismatch"));
        }
        if &body[..8] != MANIFEST_MAGIC {
            return Err(StorageError::Manifest("bad magic"));
        }
        if u16::from_le_bytes(body[8..10].try_into().unwrap()) != DISK_VERSION {
            return Err(StorageError::Manifest("unsupported version"));
        }
        let count = u32::from_le_bytes(body[10..14].try_into().unwrap()) as usize;
        let mut names = Vec::with_capacity(count.min(1024));
        let mut at = 14;
        for _ in 0..count {
            if at + 2 > body.len() {
                return Err(StorageError::Manifest("truncated name table"));
            }
            let len = u16::from_le_bytes(body[at..at + 2].try_into().unwrap()) as usize;
            at += 2;
            if at + len > body.len() {
                return Err(StorageError::Manifest("truncated name"));
            }
            let name = std::str::from_utf8(&body[at..at + len])
                .map_err(|_| StorageError::Manifest("non-utf8 name"))?
                .to_owned();
            validate_name(&name).map_err(|_| StorageError::Manifest("unstorable name"))?;
            at += len;
            names.push(name);
        }
        if at != body.len() {
            return Err(StorageError::Manifest("trailing bytes"));
        }
        Ok(names)
    }

    // -- delta sidecar -------------------------------------------------

    /// Persists `delta` for graph `name` (atomic). Written on every
    /// committed batch; an empty overlay still records the version.
    pub fn write_delta(&self, name: &str, delta: &PersistedDelta) -> Result<(), StorageError> {
        validate_name(name)?;
        let mut buf = Vec::with_capacity(34 + 8 * (delta.inserts.len() + delta.deletes.len()));
        buf.extend_from_slice(DELTA_MAGIC);
        buf.extend_from_slice(&DISK_VERSION.to_le_bytes());
        buf.extend_from_slice(&delta.version.to_le_bytes());
        buf.extend_from_slice(&(delta.inserts.len() as u64).to_le_bytes());
        buf.extend_from_slice(&(delta.deletes.len() as u64).to_le_bytes());
        for &(u, v) in delta.inserts.iter().chain(delta.deletes.iter()) {
            buf.extend_from_slice(&u.to_le_bytes());
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        self.write_atomic(&self.delta_path(name), &buf)
    }

    /// Reads graph `name`'s sidecar; `Ok(None)` when absent (a graph
    /// persisted at version 0 and never mutated).
    pub fn read_delta(&self, name: &str) -> Result<Option<PersistedDelta>, StorageError> {
        let path = self.delta_path(name);
        if !path.exists() {
            return Ok(None);
        }
        let err = |reason| StorageError::Delta {
            graph: name.to_owned(),
            reason,
        };
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        if bytes.len() < 8 + 2 + 8 + 8 + 8 + 4 {
            return Err(err("truncated"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            return Err(err("checksum mismatch"));
        }
        if &body[..8] != DELTA_MAGIC {
            return Err(err("bad magic"));
        }
        if u16::from_le_bytes(body[8..10].try_into().unwrap()) != DISK_VERSION {
            return Err(err("unsupported version"));
        }
        let version = u64::from_le_bytes(body[10..18].try_into().unwrap());
        let n_ins = u64::from_le_bytes(body[18..26].try_into().unwrap()) as usize;
        let n_del = u64::from_le_bytes(body[26..34].try_into().unwrap()) as usize;
        let expect = 34 + 8 * (n_ins + n_del);
        if body.len() != expect {
            return Err(err("length disagrees with edge counts"));
        }
        let read_pairs = |start: usize, count: usize| -> Vec<(VertexId, VertexId)> {
            (0..count)
                .map(|i| {
                    let at = start + i * 8;
                    (
                        u32::from_le_bytes(body[at..at + 4].try_into().unwrap()),
                        u32::from_le_bytes(body[at + 4..at + 8].try_into().unwrap()),
                    )
                })
                .collect()
        };
        let inserts = read_pairs(34, n_ins);
        let deletes = read_pairs(34 + 8 * n_ins, n_del);
        for &(u, v) in inserts.iter().chain(deletes.iter()) {
            if u >= v {
                return Err(err("unnormalized edge (expected u < v)"));
            }
        }
        Ok(Some(PersistedDelta {
            version,
            inserts,
            deletes,
        }))
    }

    // -- snapshots -----------------------------------------------------

    /// Persists a suspended query's snapshot bytes under `id` (atomic).
    pub fn write_snapshot(&self, id: u64, bytes: &[u8]) -> Result<(), StorageError> {
        self.write_atomic(&self.snapshot_path(id), bytes)
    }

    /// Removes a persisted snapshot (consumed on successful resume).
    pub fn remove_snapshot(&self, id: u64) -> Result<(), StorageError> {
        match fs::remove_file(self.snapshot_path(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// All persisted snapshots as `(id, bytes)`, sorted by id. Unreadable
    /// entries (non-numeric names, i/o races) are skipped — snapshot
    /// *content* validation happens in the TDFSSNAP decoder at resume.
    pub fn read_snapshots(&self) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("snapshots"))? {
            let path = entry?.path();
            let Some(id) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(".tdfssnap"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            let mut bytes = Vec::new();
            if File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .is_ok()
            {
                out.push((id, bytes));
            }
        }
        out.sort_by_key(|(id, _)| *id);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> (tdfs_testkit::TempDir, DiskCatalog) {
        let dir = tdfs_testkit::TempDir::new("tdfs-disk").unwrap();
        let cat = DiskCatalog::open(dir.path()).unwrap();
        (dir, cat)
    }

    #[test]
    fn manifest_roundtrip_and_validation() {
        let (_dir, cat) = catalog();
        assert_eq!(cat.read_manifest().unwrap(), Vec::<String>::new());
        let names = vec!["alpha".to_owned(), "g2.v1".to_owned(), "x-y_z".to_owned()];
        cat.write_manifest(&names).unwrap();
        assert_eq!(cat.read_manifest().unwrap(), names);
        assert!(matches!(
            cat.write_manifest(&["bad/name".to_owned()]),
            Err(StorageError::BadName(_))
        ));
        assert!(validate_name(".hidden").is_err());
        assert!(validate_name("").is_err());
        assert!(validate_name(&"x".repeat(200)).is_err());
    }

    #[test]
    fn torn_manifest_is_a_typed_error() {
        let (_dir, cat) = catalog();
        cat.write_manifest(&["g".to_owned()]).unwrap();
        let path = cat.root().join("MANIFEST");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 6;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            cat.read_manifest(),
            Err(StorageError::Manifest("checksum mismatch"))
        ));
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(cat.read_manifest().is_err());
    }

    #[test]
    fn delta_sidecar_roundtrip() {
        let (_dir, cat) = catalog();
        assert_eq!(cat.read_delta("g").unwrap(), None);
        let delta = PersistedDelta {
            version: 7,
            inserts: vec![(0, 3), (1, 2)],
            deletes: vec![(2, 9)],
        };
        cat.write_delta("g", &delta).unwrap();
        assert_eq!(cat.read_delta("g").unwrap(), Some(delta));
        // Empty overlay still records the version (compact graph).
        let compacted = PersistedDelta {
            version: 9,
            ..Default::default()
        };
        cat.write_delta("g", &compacted).unwrap();
        assert_eq!(cat.read_delta("g").unwrap(), Some(compacted));
        // Corruption: flip a payload byte.
        let path = cat.delta_path("g");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            cat.read_delta("g"),
            Err(StorageError::Delta { .. })
        ));
    }

    #[test]
    fn snapshots_roundtrip_and_consume() {
        let (_dir, cat) = catalog();
        assert!(cat.read_snapshots().unwrap().is_empty());
        cat.write_snapshot(3, b"ccc").unwrap();
        cat.write_snapshot(1, b"a").unwrap();
        let snaps = cat.read_snapshots().unwrap();
        assert_eq!(
            snaps,
            vec![(1, b"a".to_vec()), (3, b"ccc".to_vec())],
            "sorted by id"
        );
        cat.remove_snapshot(1).unwrap();
        cat.remove_snapshot(1).unwrap(); // idempotent
        assert_eq!(cat.read_snapshots().unwrap().len(), 1);
    }

    #[test]
    fn reopen_clears_staging_leftovers() {
        let (dir, cat) = catalog();
        std::fs::write(cat.root().join("tmp").join("MANIFEST"), b"torn garbage").unwrap();
        let cat = DiskCatalog::open(dir.path()).unwrap();
        assert!(std::fs::read_dir(cat.root().join("tmp"))
            .unwrap()
            .next()
            .is_none());
        assert_eq!(cat.read_manifest().unwrap(), Vec::<String>::new());
    }
}
