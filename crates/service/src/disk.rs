//! The on-disk catalog: a service state directory that survives
//! restarts — and power loss.
//!
//! Layout under one root directory:
//!
//! ```text
//! <root>/MANIFEST               # TDFSCATL: registered graph names
//! <root>/JOURNAL                # TDFSJRNL: in-flight transition intent
//! <root>/graphs/<name>.tdfsgrph # TDFSGRPH container (immutable base)
//! <root>/graphs/<name>.delta    # TDFSDELT: version + cumulative overlay
//! <root>/snapshots/<id>.tdfssnap# suspended-query checkpoints
//! <root>/tmp/                   # staging for atomic writes
//! <root>/quarantine/            # where tdfsck moves unidentifiable files
//! ```
//!
//! **Crash consistency.** Every mutation flows through the
//! [`Vfs`] seam (`tdfs_graph::vfs`), so the whole protocol can run under
//! the simulated-power-loss filesystem in `tdfs-testkit` and be swept
//! for recovery at every syscall boundary.
//!
//! *Single files* are written via *tmp + fsync + atomic rename + parent
//! fsync*: bytes go to a uniquely named staging file under `tmp/`
//! (`tmp/<name>.<seq>` — two concurrent writes to the same final path
//! can never share a staging file), the file is `sync_all`'d, renamed
//! into place, and the parent directory is fsynced (on POSIX a rename
//! without the directory fsync is allowed to vanish on power loss). A
//! crash mid-write leaves only garbage under `tmp/` — cleared on the
//! next [`DiskCatalog::open`] — and never a torn `MANIFEST`, container,
//! delta or snapshot. Readers double-check anyway: every format here
//! carries magic + CRC32 (or, for snapshots, the TDFSSNAP codec's own
//! validation), so a torn file that somehow reached its final name is a
//! typed error, never a wrong graph.
//!
//! *Multi-file transitions* — installing a container plus its sidecar
//! plus a manifest entry ([`DiskCatalog::install_graph`]: register,
//! compact, cluster adoption) — get a write-ahead **intent journal**
//! (`JOURNAL`, magic `TDFSJRNL`). The protocol: stage the container and
//! fsync it; journal the [`Intent`] (atomically, durably); rename the
//! container into place; finish the dependent files (sidecar, manifest);
//! clear the journal. The container rename is the *commit point*: the
//! journal records the staged container's fingerprint (length + stored
//! header CRC), and recovery at [`DiskCatalog::open`] checks whether the
//! final container matches it. Match → the rename committed, so recovery
//! *rolls forward* (rewrites the empty sidecar at the intent's version,
//! re-unions the manifest — both idempotent). No match → nothing
//! observable happened, so recovery *rolls back* by clearing the
//! journal. Either way the catalog lands on exactly the pre- or
//! post-transition state, never a hybrid (e.g. a freshly compacted
//! container shadowed by the stale pre-compaction overlay, which would
//! double-apply edges).
//!
//! Single-file mutations (delta sidecar, snapshot put/remove) are also
//! journaled so an interrupted one is visible to `tdfsck` as typed
//! intent rather than anonymous leftovers; their recovery is trivial
//! (the atomic write makes either outcome consistent; snapshot removal
//! is re-run).
//!
//! The delta sidecar (`TDFSDELT`) persists a [`DeltaCsr`]'s *cumulative*
//! effective overlay — normalized `u < v` insert/delete edge lists vs
//! the immutable container base — plus the [`GraphVersion`], so a
//! restarted service rebuilds the exact same view
//! ([`DeltaCsr::with_overlay`]) at the exact same version. Compaction
//! rewrites the container and shrinks the sidecar to an empty overlay
//! that still records the version.
//!
//! [`DeltaCsr`]: tdfs_graph::DeltaCsr
//! [`DeltaCsr::with_overlay`]: tdfs_graph::DeltaCsr::with_overlay

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use tdfs_graph::container::crc32;
use tdfs_graph::vfs::{RealFs, Vfs, WriteSeek};
use tdfs_graph::{ContainerError, GraphVersion, VertexId};

/// Magic prefix of the `MANIFEST` file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"TDFSCATL";
/// Magic prefix of a `.delta` overlay sidecar.
pub const DELTA_MAGIC: &[u8; 8] = b"TDFSDELT";
/// Magic prefix of the `JOURNAL` intent record.
pub const JOURNAL_MAGIC: &[u8; 8] = b"TDFSJRNL";
/// On-disk format version of all three (bumped together).
pub const DISK_VERSION: u16 = 1;

/// Byte range of the container header CRC inside a `TDFSGRPH` file,
/// used (with the file length) as the install commit-point fingerprint.
const CONTAINER_HEADER_CRC_RANGE: std::ops::Range<usize> = 80..84;

/// Why a storage operation failed. All typed — a corrupt or torn file
/// surfaces as an error, never a panic or a silently wrong catalog.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem error.
    Io(String),
    /// The graph name cannot be used as a file name (empty, too long,
    /// or containing characters outside `[A-Za-z0-9._-]`).
    BadName(String),
    /// `MANIFEST` is missing, torn, or fails its checksum.
    Manifest(&'static str),
    /// The intent `JOURNAL` is torn or fails its checksum. Strict open
    /// refuses (the last transition's outcome is unknowable); salvage
    /// mode quarantines it and continues.
    Journal(&'static str),
    /// A graph container failed to open/verify.
    Container(ContainerError),
    /// A `.delta` overlay sidecar is torn or inconsistent.
    Delta { graph: String, reason: &'static str },
    /// The persisted overlay does not fit its container base.
    Overlay(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o: {e}"),
            StorageError::BadName(n) => write!(f, "graph name {n:?} is not storable"),
            StorageError::Manifest(r) => write!(f, "catalog manifest: {r}"),
            StorageError::Journal(r) => write!(f, "intent journal: {r}"),
            StorageError::Container(e) => write!(f, "graph container: {e}"),
            StorageError::Delta { graph, reason } => {
                write!(f, "delta sidecar for {graph:?}: {reason}")
            }
            StorageError::Overlay(e) => write!(f, "persisted overlay rejected: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

impl From<ContainerError> for StorageError {
    fn from(e: ContainerError) -> Self {
        StorageError::Container(e)
    }
}

/// A persisted overlay sidecar, decoded.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PersistedDelta {
    /// The catalog version the graph was at.
    pub version: GraphVersion,
    /// Cumulative effective inserts vs the container base (`u < v`).
    pub inserts: Vec<(VertexId, VertexId)>,
    /// Cumulative effective deletes vs the container base (`u < v`).
    pub deletes: Vec<(VertexId, VertexId)>,
}

/// A journaled in-flight transition (see the module docs for the
/// recovery action each one implies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Intent {
    /// A container is being installed (register / compact / adoption).
    /// `container_len` + `header_crc` fingerprint the staged container;
    /// the rename into place is the commit point.
    InstallGraph {
        name: String,
        version: GraphVersion,
        container_len: u64,
        header_crc: u32,
    },
    /// A delta sidecar is being replaced (apply-batch persistence).
    ApplyDelta { name: String, version: GraphVersion },
    /// A snapshot checkpoint is being written.
    PutSnapshot { id: u64 },
    /// A snapshot checkpoint is being removed (consumed by resume).
    DropSnapshot { id: u64 },
}

impl Intent {
    /// Serializes to the on-disk `JOURNAL` format (magic, disk version,
    /// tag + fields, CRC32 trailer). Public for tooling and fixtures;
    /// the service writes journals only through its own transitions.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(JOURNAL_MAGIC);
        buf.extend_from_slice(&DISK_VERSION.to_le_bytes());
        let name_field = |buf: &mut Vec<u8>, name: &str| {
            buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
        };
        match self {
            Intent::InstallGraph {
                name,
                version,
                container_len,
                header_crc,
            } => {
                buf.push(1);
                name_field(&mut buf, name);
                buf.extend_from_slice(&version.to_le_bytes());
                buf.extend_from_slice(&container_len.to_le_bytes());
                buf.extend_from_slice(&header_crc.to_le_bytes());
            }
            Intent::ApplyDelta { name, version } => {
                buf.push(2);
                name_field(&mut buf, name);
                buf.extend_from_slice(&version.to_le_bytes());
            }
            Intent::PutSnapshot { id } => {
                buf.push(3);
                buf.extend_from_slice(&id.to_le_bytes());
            }
            Intent::DropSnapshot { id } => {
                buf.push(4);
                buf.extend_from_slice(&id.to_le_bytes());
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parses an on-disk `JOURNAL`; every validation failure is a typed
    /// [`StorageError::Journal`].
    pub fn decode(bytes: &[u8]) -> Result<Intent, StorageError> {
        let err = StorageError::Journal;
        if bytes.len() < 8 + 2 + 1 + 4 {
            return Err(err("truncated"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            return Err(err("checksum mismatch"));
        }
        if &body[..8] != JOURNAL_MAGIC {
            return Err(err("bad magic"));
        }
        if u16::from_le_bytes(body[8..10].try_into().unwrap()) != DISK_VERSION {
            return Err(err("unsupported version"));
        }
        let tag = body[10];
        let mut at = 11;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], StorageError> {
            if *at + n > body.len() {
                return Err(err("truncated field"));
            }
            let s = &body[*at..*at + n];
            *at += n;
            Ok(s)
        };
        let read_name = |at: &mut usize| -> Result<String, StorageError> {
            let len = u16::from_le_bytes(take(at, 2)?.try_into().unwrap()) as usize;
            let name = std::str::from_utf8(take(at, len)?)
                .map_err(|_| err("non-utf8 name"))?
                .to_owned();
            validate_name(&name).map_err(|_| err("unstorable name"))?;
            Ok(name)
        };
        let u64_field = |at: &mut usize| -> Result<u64, StorageError> {
            Ok(u64::from_le_bytes(take(at, 8)?.try_into().unwrap()))
        };
        let intent = match tag {
            1 => {
                let name = read_name(&mut at)?;
                let version = u64_field(&mut at)?;
                let container_len = u64_field(&mut at)?;
                let header_crc = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
                Intent::InstallGraph {
                    name,
                    version,
                    container_len,
                    header_crc,
                }
            }
            2 => {
                let name = read_name(&mut at)?;
                let version = u64_field(&mut at)?;
                Intent::ApplyDelta { name, version }
            }
            3 => Intent::PutSnapshot {
                id: u64_field(&mut at)?,
            },
            4 => Intent::DropSnapshot {
                id: u64_field(&mut at)?,
            },
            _ => return Err(err("unknown intent tag")),
        };
        if at != body.len() {
            return Err(err("trailing bytes"));
        }
        Ok(intent)
    }
}

/// What [`DiskCatalog::open`] found and did about an interrupted
/// transition (surfaced so `tdfsck` and tests can report it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovery {
    /// No journal: the previous shutdown finished its last transition.
    Clean,
    /// The intent's commit point had been reached; the dependent files
    /// were re-derived (rolled forward).
    RolledForward(Intent),
    /// The intent's commit point had not been reached; the journal was
    /// discarded (rolled back).
    RolledBack(Intent),
}

/// Handle to a service state directory (see the module docs).
/// Staging-name uniquifier shared by every catalog in the process:
/// `tmp/<name>.<seq>`. Process-global (not per-catalog) so two
/// `DiskCatalog` instances pointed at the same root can still never
/// collide on a staging file.
static STAGING_SEQ: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
pub struct DiskCatalog {
    root: PathBuf,
    vfs: Arc<dyn Vfs>,
    /// Serializes journaled transitions (one `JOURNAL` slot). Poisoned
    /// locks are tolerated: a chaos panic mid-transition must not wedge
    /// every later catalog mutation.
    journal_lock: Mutex<()>,
    /// What recovery happened at open (for reporting; `Clean` after).
    recovery: Recovery,
}

/// `name` must be safe to embed in a file name.
pub fn validate_name(name: &str) -> Result<(), StorageError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if ok {
        Ok(())
    } else {
        Err(StorageError::BadName(name.to_owned()))
    }
}

/// Fingerprints a container file for the install commit point: its
/// length plus the header CRC stored at bytes 80..84. (The streaming
/// writer seeks back to patch the header, so a whole-file CRC cannot be
/// computed while writing; the header CRC covers the layout everything
/// else hangs off, and per-segment CRCs cover the payload at load.)
fn container_fingerprint(path: &Path) -> std::io::Result<Option<(u64, u32)>> {
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let len = f.metadata()?.len();
    if len < CONTAINER_HEADER_CRC_RANGE.end as u64 {
        return Ok(Some((len, 0)));
    }
    let mut header = [0u8; CONTAINER_HEADER_CRC_RANGE.end];
    f.read_exact(&mut header)?;
    let crc = u32::from_le_bytes(header[CONTAINER_HEADER_CRC_RANGE].try_into().unwrap());
    Ok(Some((len, crc)))
}

impl DiskCatalog {
    /// Opens `root` on the real filesystem. See [`DiskCatalog::open_with`].
    pub fn open(root: impl Into<PathBuf>) -> Result<DiskCatalog, StorageError> {
        DiskCatalog::open_with(root, RealFs::arc())
    }

    /// Opens `root` as a state directory through `vfs`, creating the
    /// layout (and an empty `MANIFEST`) if absent, clearing staging
    /// leftovers from a previous crash, and recovering any journaled
    /// in-flight transition (roll forward past its commit point, roll
    /// back before it).
    pub fn open_with(
        root: impl Into<PathBuf>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<DiskCatalog, StorageError> {
        let root = root.into();
        vfs.create_dir_all(&root.join("graphs"))?;
        vfs.create_dir_all(&root.join("snapshots"))?;
        vfs.create_dir_all(&root.join("tmp"))?;
        let mut cat = DiskCatalog {
            root,
            vfs,
            journal_lock: Mutex::new(()),
            recovery: Recovery::Clean,
        };
        // Torn staging files from a crash mid-write are garbage by
        // design; make sure they can never shadow real state.
        let tmp = cat.root.join("tmp");
        for name in cat.vfs.read_dir(&tmp)? {
            cat.vfs.remove_file(&tmp.join(name))?;
        }
        if !cat.manifest_path().exists() {
            cat.write_manifest(&[])?;
        }
        cat.recovery = cat.recover_journal()?;
        Ok(cat)
    }

    /// A catalog handle over `root` that performs **no** I/O — no layout
    /// creation, no staging cleanup, no journal recovery. `tdfsck` uses
    /// this so a check-only pass never mutates the directory it audits.
    pub(crate) fn probe(root: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> DiskCatalog {
        DiskCatalog {
            root: root.into(),
            vfs,
            journal_lock: Mutex::new(()),
            recovery: Recovery::Clean,
        }
    }

    /// The state directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The filesystem seam all mutations flow through.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// What journal recovery happened when this catalog was opened.
    pub fn recovery(&self) -> &Recovery {
        &self.recovery
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("MANIFEST")
    }

    /// Path of the intent journal.
    pub fn journal_path(&self) -> PathBuf {
        self.root.join("JOURNAL")
    }

    /// Path of the container for graph `name`.
    pub fn graph_path(&self, name: &str) -> PathBuf {
        self.root.join("graphs").join(format!("{name}.tdfsgrph"))
    }

    /// Path of the overlay sidecar for graph `name`.
    pub fn delta_path(&self, name: &str) -> PathBuf {
        self.root.join("graphs").join(format!("{name}.delta"))
    }

    /// Path of the snapshot checkpoint for suspended query `id`.
    pub fn snapshot_path(&self, id: u64) -> PathBuf {
        self.root.join("snapshots").join(format!("{id}.tdfssnap"))
    }

    /// A unique staging path for an atomic write targeting `file_name`.
    fn staging_path(&self, file_name: &std::ffi::OsStr) -> PathBuf {
        let seq = STAGING_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut staged = file_name.to_os_string();
        staged.push(format!(".{seq}"));
        self.root.join("tmp").join(staged)
    }

    /// Writes `bytes` to `final_path` atomically and durably: uniquely
    /// named staging file under `tmp/`, fsync, rename into place, fsync
    /// of the parent directory (without which POSIX lets the rename
    /// vanish on power loss). The `catalog.write.midfile` fault point
    /// fires with half the payload written — a panic there models the
    /// torn-write crash the rename protocol makes invisible.
    pub fn write_atomic(&self, final_path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        let file_name = final_path
            .file_name()
            .ok_or(StorageError::Manifest("atomic write without a file name"))?;
        let parent = final_path
            .parent()
            .ok_or(StorageError::Manifest("atomic write without a parent dir"))?;
        let tmp = self.staging_path(file_name);
        {
            let mut f = self.vfs.create(&tmp)?;
            let mid = bytes.len() / 2;
            f.write_all(&bytes[..mid])?;
            crate::chaos_point!("catalog.write.midfile");
            f.write_all(&bytes[mid..])?;
            f.sync_all()?;
        }
        self.vfs.rename(&tmp, final_path)?;
        self.vfs.sync_dir(parent)?;
        Ok(())
    }

    // -- intent journal ------------------------------------------------

    /// The current journaled intent, if any. `Ok(None)` means the last
    /// transition completed.
    pub fn read_journal(&self) -> Result<Option<Intent>, StorageError> {
        let path = self.journal_path();
        let mut bytes = Vec::new();
        match File::open(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
            Ok(mut f) => f.read_to_end(&mut bytes)?,
        };
        Intent::decode(&bytes).map(Some)
    }

    fn set_journal(&self, intent: &Intent) -> Result<(), StorageError> {
        self.write_atomic(&self.journal_path(), &intent.encode())
    }

    fn clear_journal(&self) -> Result<(), StorageError> {
        self.vfs.remove_file(&self.journal_path())?;
        Ok(self.vfs.sync_dir(&self.root)?)
    }

    /// Applies the recovery action for a leftover intent (see module
    /// docs). Called once from `open_with` (and by `tdfsck` repair);
    /// all actions are idempotent.
    pub(crate) fn recover_journal(&self) -> Result<Recovery, StorageError> {
        let Some(intent) = self.read_journal()? else {
            return Ok(Recovery::Clean);
        };
        let forward = match &intent {
            Intent::InstallGraph {
                name,
                version,
                container_len,
                header_crc,
            } => {
                let committed = container_fingerprint(&self.graph_path(name))?
                    == Some((*container_len, *header_crc));
                if committed {
                    // The rename landed: re-derive the dependent files.
                    // The sidecar is reset to an empty overlay at the
                    // intent's version (exactly what the interrupted
                    // transition would have written — and what prevents
                    // a compacted container from being double-applied
                    // through its stale pre-compaction overlay).
                    self.write_delta_raw(
                        name,
                        &PersistedDelta {
                            version: *version,
                            ..PersistedDelta::default()
                        },
                    )?;
                    let mut names = self.read_manifest()?;
                    if !names.iter().any(|n| n == name) {
                        names.push(name.clone());
                        self.write_manifest(&names)?;
                    }
                }
                committed
            }
            // The sidecar / snapshot write is itself atomic: whichever
            // side of it the crash landed on is consistent. Nothing to
            // re-derive.
            Intent::ApplyDelta { .. } | Intent::PutSnapshot { .. } => false,
            Intent::DropSnapshot { id } => {
                // Re-run the removal; it is idempotent.
                self.vfs.remove_file(&self.snapshot_path(*id))?;
                self.vfs.sync_dir(&self.root.join("snapshots"))?;
                true
            }
        };
        self.clear_journal()?;
        Ok(if forward {
            Recovery::RolledForward(intent)
        } else {
            Recovery::RolledBack(intent)
        })
    }

    fn lock_journal(&self) -> std::sync::MutexGuard<'_, ()> {
        self.journal_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    // -- graph install (register / compact / adoption) -----------------

    /// Installs a container for graph `name` at `version` as one atomic
    /// multi-file transition: container + empty-overlay sidecar at
    /// `version` + manifest entry. `write` streams the container into
    /// the (buffered) staging file — typically via
    /// `tdfs_graph::write_container`.
    ///
    /// After a crash anywhere inside this call, [`DiskCatalog::open`]
    /// recovers to exactly the pre-state (crash before the container
    /// rename committed) or the post-state (after), never a mix.
    pub fn install_graph(
        &self,
        name: &str,
        version: GraphVersion,
        write: impl FnOnce(&mut dyn WriteSeek) -> Result<(), StorageError>,
    ) -> Result<(), StorageError> {
        validate_name(name)?;
        let final_path = self.graph_path(name);
        let tmp = self.staging_path(final_path.file_name().unwrap());
        {
            let mut f = self.vfs.create(&tmp)?;
            // The container writer emits many tiny writes (one per
            // varint); buffering keeps the recorded op log — and the
            // crash-point sweep over it — tractable.
            let mut buffered = BufWriter::with_capacity(16 << 10, &mut *f);
            write(&mut buffered)?;
            buffered
                .into_inner()
                .map_err(|e| StorageError::Io(e.to_string()))?;
            crate::chaos_point!("catalog.install.midfile");
            f.sync_all()?;
        }
        let fingerprint = container_fingerprint(&tmp)?
            .ok_or_else(|| StorageError::Io("staged container vanished".to_owned()))?;
        let _guard = self.lock_journal();
        self.set_journal(&Intent::InstallGraph {
            name: name.to_owned(),
            version,
            container_len: fingerprint.0,
            header_crc: fingerprint.1,
        })?;
        // Commit point: after this rename is durable, recovery rolls
        // forward; before it, recovery rolls back.
        self.vfs.rename(&tmp, &final_path)?;
        self.vfs.sync_dir(final_path.parent().unwrap())?;
        crate::chaos_point!("catalog.install.postrename");
        self.write_delta_raw(
            name,
            &PersistedDelta {
                version,
                ..PersistedDelta::default()
            },
        )?;
        let mut names = self.read_manifest()?;
        if !names.iter().any(|n| n == name) {
            names.push(name.to_owned());
            self.write_manifest(&names)?;
        }
        self.clear_journal()
    }

    // -- manifest ------------------------------------------------------

    /// Replaces the manifest with `names` (atomic).
    pub fn write_manifest(&self, names: &[String]) -> Result<(), StorageError> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(MANIFEST_MAGIC);
        buf.extend_from_slice(&DISK_VERSION.to_le_bytes());
        buf.extend_from_slice(&(names.len() as u32).to_le_bytes());
        for name in names {
            validate_name(name)?;
            buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        self.write_atomic(&self.manifest_path(), &buf)
    }

    /// Reads the registered graph names back (sorted as written).
    pub fn read_manifest(&self) -> Result<Vec<String>, StorageError> {
        let mut bytes = Vec::new();
        File::open(self.manifest_path())
            .map_err(|_| StorageError::Manifest("missing"))?
            .read_to_end(&mut bytes)?;
        if bytes.len() < MANIFEST_MAGIC.len() + 2 + 4 + 4 {
            return Err(StorageError::Manifest("truncated"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            return Err(StorageError::Manifest("checksum mismatch"));
        }
        if &body[..8] != MANIFEST_MAGIC {
            return Err(StorageError::Manifest("bad magic"));
        }
        if u16::from_le_bytes(body[8..10].try_into().unwrap()) != DISK_VERSION {
            return Err(StorageError::Manifest("unsupported version"));
        }
        let count = u32::from_le_bytes(body[10..14].try_into().unwrap()) as usize;
        let mut names = Vec::with_capacity(count.min(1024));
        let mut at = 14;
        for _ in 0..count {
            if at + 2 > body.len() {
                return Err(StorageError::Manifest("truncated name table"));
            }
            let len = u16::from_le_bytes(body[at..at + 2].try_into().unwrap()) as usize;
            at += 2;
            if at + len > body.len() {
                return Err(StorageError::Manifest("truncated name"));
            }
            let name = std::str::from_utf8(&body[at..at + len])
                .map_err(|_| StorageError::Manifest("non-utf8 name"))?
                .to_owned();
            validate_name(&name).map_err(|_| StorageError::Manifest("unstorable name"))?;
            at += len;
            names.push(name);
        }
        if at != body.len() {
            return Err(StorageError::Manifest("trailing bytes"));
        }
        Ok(names)
    }

    // -- delta sidecar -------------------------------------------------

    /// Persists `delta` for graph `name`, journaled. Written on every
    /// committed batch; an empty overlay still records the version.
    pub fn write_delta(&self, name: &str, delta: &PersistedDelta) -> Result<(), StorageError> {
        validate_name(name)?;
        let _guard = self.lock_journal();
        self.set_journal(&Intent::ApplyDelta {
            name: name.to_owned(),
            version: delta.version,
        })?;
        self.write_delta_raw(name, delta)?;
        self.clear_journal()
    }

    /// The bare atomic sidecar write (no journaling) — used inside
    /// journaled transitions and by recovery/fsck repair.
    pub(crate) fn write_delta_raw(
        &self,
        name: &str,
        delta: &PersistedDelta,
    ) -> Result<(), StorageError> {
        validate_name(name)?;
        let mut buf = Vec::with_capacity(34 + 8 * (delta.inserts.len() + delta.deletes.len()));
        buf.extend_from_slice(DELTA_MAGIC);
        buf.extend_from_slice(&DISK_VERSION.to_le_bytes());
        buf.extend_from_slice(&delta.version.to_le_bytes());
        buf.extend_from_slice(&(delta.inserts.len() as u64).to_le_bytes());
        buf.extend_from_slice(&(delta.deletes.len() as u64).to_le_bytes());
        for &(u, v) in delta.inserts.iter().chain(delta.deletes.iter()) {
            buf.extend_from_slice(&u.to_le_bytes());
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        self.write_atomic(&self.delta_path(name), &buf)
    }

    /// Reads graph `name`'s sidecar; `Ok(None)` when absent (a graph
    /// persisted at version 0 and never mutated).
    pub fn read_delta(&self, name: &str) -> Result<Option<PersistedDelta>, StorageError> {
        let path = self.delta_path(name);
        if !path.exists() {
            return Ok(None);
        }
        let err = |reason| StorageError::Delta {
            graph: name.to_owned(),
            reason,
        };
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        if bytes.len() < 8 + 2 + 8 + 8 + 8 + 4 {
            return Err(err("truncated"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            return Err(err("checksum mismatch"));
        }
        if &body[..8] != DELTA_MAGIC {
            return Err(err("bad magic"));
        }
        if u16::from_le_bytes(body[8..10].try_into().unwrap()) != DISK_VERSION {
            return Err(err("unsupported version"));
        }
        let version = u64::from_le_bytes(body[10..18].try_into().unwrap());
        let n_ins = u64::from_le_bytes(body[18..26].try_into().unwrap()) as usize;
        let n_del = u64::from_le_bytes(body[26..34].try_into().unwrap()) as usize;
        let expect = 34 + 8 * (n_ins + n_del);
        if body.len() != expect {
            return Err(err("length disagrees with edge counts"));
        }
        let read_pairs = |start: usize, count: usize| -> Vec<(VertexId, VertexId)> {
            (0..count)
                .map(|i| {
                    let at = start + i * 8;
                    (
                        u32::from_le_bytes(body[at..at + 4].try_into().unwrap()),
                        u32::from_le_bytes(body[at + 4..at + 8].try_into().unwrap()),
                    )
                })
                .collect()
        };
        let inserts = read_pairs(34, n_ins);
        let deletes = read_pairs(34 + 8 * n_ins, n_del);
        for &(u, v) in inserts.iter().chain(deletes.iter()) {
            if u >= v {
                return Err(err("unnormalized edge (expected u < v)"));
            }
        }
        Ok(Some(PersistedDelta {
            version,
            inserts,
            deletes,
        }))
    }

    // -- snapshots -----------------------------------------------------

    /// Persists a suspended query's snapshot bytes under `id`,
    /// journaled.
    pub fn write_snapshot(&self, id: u64, bytes: &[u8]) -> Result<(), StorageError> {
        let _guard = self.lock_journal();
        self.set_journal(&Intent::PutSnapshot { id })?;
        self.write_atomic(&self.snapshot_path(id), bytes)?;
        self.clear_journal()
    }

    /// Removes a persisted snapshot (consumed on successful resume),
    /// journaled and made durable with a directory fsync.
    pub fn remove_snapshot(&self, id: u64) -> Result<(), StorageError> {
        let _guard = self.lock_journal();
        self.set_journal(&Intent::DropSnapshot { id })?;
        self.vfs.remove_file(&self.snapshot_path(id))?;
        self.vfs.sync_dir(&self.root.join("snapshots"))?;
        self.clear_journal()
    }

    /// All persisted snapshots as `(id, bytes)`, sorted by id. Unreadable
    /// entries (non-numeric names, i/o races) are skipped — snapshot
    /// *content* validation happens in the TDFSSNAP decoder at resume.
    pub fn read_snapshots(&self) -> Result<Vec<(u64, Vec<u8>)>, StorageError> {
        let mut out = Vec::new();
        for name in self.vfs.read_dir(&self.root.join("snapshots"))? {
            let path = self.root.join("snapshots").join(&name);
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_suffix(".tdfssnap"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            let mut bytes = Vec::new();
            if File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .is_ok()
            {
                out.push((id, bytes));
            }
        }
        out.sort_by_key(|(id, _)| *id);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> (tdfs_testkit::TempDir, DiskCatalog) {
        let dir = tdfs_testkit::TempDir::new("tdfs-disk").unwrap();
        let cat = DiskCatalog::open(dir.path()).unwrap();
        (dir, cat)
    }

    #[test]
    fn manifest_roundtrip_and_validation() {
        let (_dir, cat) = catalog();
        assert_eq!(cat.read_manifest().unwrap(), Vec::<String>::new());
        let names = vec!["alpha".to_owned(), "g2.v1".to_owned(), "x-y_z".to_owned()];
        cat.write_manifest(&names).unwrap();
        assert_eq!(cat.read_manifest().unwrap(), names);
        assert!(matches!(
            cat.write_manifest(&["bad/name".to_owned()]),
            Err(StorageError::BadName(_))
        ));
        assert!(validate_name(".hidden").is_err());
        assert!(validate_name("").is_err());
        assert!(validate_name(&"x".repeat(200)).is_err());
    }

    #[test]
    fn torn_manifest_is_a_typed_error() {
        let (_dir, cat) = catalog();
        cat.write_manifest(&["g".to_owned()]).unwrap();
        let path = cat.root().join("MANIFEST");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 6;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            cat.read_manifest(),
            Err(StorageError::Manifest("checksum mismatch"))
        ));
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(cat.read_manifest().is_err());
    }

    #[test]
    fn delta_sidecar_roundtrip() {
        let (_dir, cat) = catalog();
        assert_eq!(cat.read_delta("g").unwrap(), None);
        let delta = PersistedDelta {
            version: 7,
            inserts: vec![(0, 3), (1, 2)],
            deletes: vec![(2, 9)],
        };
        cat.write_delta("g", &delta).unwrap();
        assert_eq!(cat.read_delta("g").unwrap(), Some(delta));
        // Empty overlay still records the version (compact graph).
        let compacted = PersistedDelta {
            version: 9,
            ..Default::default()
        };
        cat.write_delta("g", &compacted).unwrap();
        assert_eq!(cat.read_delta("g").unwrap(), Some(compacted));
        // A completed journaled write leaves no journal behind.
        assert_eq!(cat.read_journal().unwrap(), None);
        // Corruption: flip a payload byte.
        let path = cat.delta_path("g");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            cat.read_delta("g"),
            Err(StorageError::Delta { .. })
        ));
    }

    #[test]
    fn snapshots_roundtrip_and_consume() {
        let (_dir, cat) = catalog();
        assert!(cat.read_snapshots().unwrap().is_empty());
        cat.write_snapshot(3, b"ccc").unwrap();
        cat.write_snapshot(1, b"a").unwrap();
        let snaps = cat.read_snapshots().unwrap();
        assert_eq!(
            snaps,
            vec![(1, b"a".to_vec()), (3, b"ccc".to_vec())],
            "sorted by id"
        );
        cat.remove_snapshot(1).unwrap();
        cat.remove_snapshot(1).unwrap(); // idempotent
        assert_eq!(cat.read_snapshots().unwrap().len(), 1);
    }

    #[test]
    fn reopen_clears_staging_leftovers() {
        let (dir, cat) = catalog();
        std::fs::write(cat.root().join("tmp").join("MANIFEST.9"), b"torn garbage").unwrap();
        let cat = DiskCatalog::open(dir.path()).unwrap();
        assert!(std::fs::read_dir(cat.root().join("tmp"))
            .unwrap()
            .next()
            .is_none());
        assert_eq!(cat.read_manifest().unwrap(), Vec::<String>::new());
    }

    #[test]
    fn staging_names_are_unique_per_write() {
        let (_dir, cat) = catalog();
        let a = cat.staging_path(std::ffi::OsStr::new("MANIFEST"));
        let b = cat.staging_path(std::ffi::OsStr::new("MANIFEST"));
        assert_ne!(a, b, "two writes to one target never share staging");
    }

    #[test]
    fn intent_journal_roundtrips_all_variants() {
        let (_dir, cat) = catalog();
        assert_eq!(cat.read_journal().unwrap(), None);
        let intents = [
            Intent::InstallGraph {
                name: "g".to_owned(),
                version: 3,
                container_len: 1234,
                header_crc: 0xDEAD_BEEF,
            },
            Intent::ApplyDelta {
                name: "g".to_owned(),
                version: 4,
            },
            Intent::PutSnapshot { id: 17 },
            Intent::DropSnapshot { id: 17 },
        ];
        for intent in intents {
            cat.set_journal(&intent).unwrap();
            assert_eq!(cat.read_journal().unwrap(), Some(intent));
        }
        cat.clear_journal().unwrap();
        assert_eq!(cat.read_journal().unwrap(), None);
        // A torn journal is a typed error, not a guess.
        std::fs::write(cat.journal_path(), b"TDFSJRNLgarbage").unwrap();
        assert!(matches!(cat.read_journal(), Err(StorageError::Journal(_))));
    }

    #[test]
    fn stale_uncommitted_install_intent_rolls_back() {
        let (dir, cat) = catalog();
        cat.set_journal(&Intent::InstallGraph {
            name: "ghost".to_owned(),
            version: 1,
            container_len: 99,
            header_crc: 7,
        })
        .unwrap();
        drop(cat);
        let cat = DiskCatalog::open(dir.path()).unwrap();
        assert!(matches!(cat.recovery(), Recovery::RolledBack(_)));
        assert_eq!(cat.read_journal().unwrap(), None);
        assert!(cat.read_manifest().unwrap().is_empty(), "no ghost entry");
        assert!(!cat.graph_path("ghost").exists());
    }

    #[test]
    fn committed_install_intent_rolls_forward() {
        let (dir, cat) = catalog();
        // Fake a committed install: container present + matching
        // fingerprint, but sidecar/manifest/journal not yet finalized —
        // exactly the state after a crash at `catalog.install.postrename`.
        let mut container = vec![0u8; 96];
        container[80..84].copy_from_slice(&0xABCD_1234u32.to_le_bytes());
        std::fs::write(cat.graph_path("g"), &container).unwrap();
        cat.set_journal(&Intent::InstallGraph {
            name: "g".to_owned(),
            version: 5,
            container_len: 96,
            header_crc: 0xABCD_1234,
        })
        .unwrap();
        drop(cat);
        let cat = DiskCatalog::open(dir.path()).unwrap();
        assert!(matches!(cat.recovery(), Recovery::RolledForward(_)));
        assert_eq!(cat.read_manifest().unwrap(), vec!["g".to_owned()]);
        let delta = cat.read_delta("g").unwrap().unwrap();
        assert_eq!(delta.version, 5);
        assert!(delta.inserts.is_empty() && delta.deletes.is_empty());
        assert_eq!(cat.read_journal().unwrap(), None);
    }

    #[test]
    fn interrupted_snapshot_drop_is_rerun() {
        let (dir, cat) = catalog();
        cat.write_snapshot(9, b"snap").unwrap();
        // Crash after journaling the drop but before the removal.
        cat.set_journal(&Intent::DropSnapshot { id: 9 }).unwrap();
        drop(cat);
        let cat = DiskCatalog::open(dir.path()).unwrap();
        assert!(matches!(cat.recovery(), Recovery::RolledForward(_)));
        assert!(cat.read_snapshots().unwrap().is_empty());
        assert_eq!(cat.read_journal().unwrap(), None);
    }
}
