//! Durable query execution: leased shards, epoch-fenced exactly-once
//! counting, watchdog-driven recovery, checkpoint/resume.
//!
//! # Model
//!
//! A durable query's admitted initial-edge list (the same
//! [`tdfs_core::host_filter_edges`] space every engine enumerates) is
//! split into contiguous **edge-range shards**. Each shard is a
//! self-describing task in a [`LeaseTable`]: shard workers lease one,
//! run the query's configured engine over exactly that edge range
//! ([`tdfs_core::match_plan_on_edges`]), and `ack` the shard's match
//! count. Because every match is rooted at exactly one admitted initial
//! edge, shard counts are additive over the disjoint ranges — the sum
//! of accepted acks is exactly the uninterrupted count, for all five
//! engines.
//!
//! # Exactly-once counting
//!
//! A count is published only by an **accepted ack**, and the lease
//! table's epoch fence accepts at most one ack per task:
//!
//! - a worker that panics mid-shard has its lease failed immediately —
//!   the shard requeues (split in half when possible) with a bumped
//!   epoch, and the dead attempt never acks;
//! - a worker that merely *stalls* past the lease deadline is reaped by
//!   the watchdog: the shard requeues, the zombie's per-lease cancel
//!   token is raised, and if the zombie completes anyway its ack
//!   carries a stale epoch and is **fenced** (discarded);
//! - a worker that observes a query-level cancel releases its lease
//!   unexecuted and publishes nothing.
//!
//! Match **emissions** (sinks / collected matches) are flushed before
//! the ack with a fence pre-check, so they are exactly-once in the
//! fault-free case and at-least-once under reclaim races — counts stay
//! exact either way. The contract is deliberate: a count is a sum
//! (double-adding corrupts it silently); an emission is a row a
//! downstream consumer can deduplicate.
//!
//! # Watchdog
//!
//! One thread per durable query drives recovery and the heartbeat:
//! reap expired leases (straggler → requeue **split in half**, the
//! lease-level analogue of the paper's timeout decomposition), revoke
//! zombies, propagate query-level cancellation into running shards,
//! and fail the query with [`EngineError::Wedged`] when a task's epoch
//! exceeds the configured bound (a shard that dies under every worker
//! assigned to it). Progress is observable via
//! [`crate::Service::progress`].

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tdfs_core::{
    match_plan_on_edges, CancelFlag, CollectSink, EngineError, MatchSink, MatcherConfig,
    MemoryBudget, RunResult, RunStats,
};
use tdfs_gpu::lease::{AckOutcome, Lease, LeaseStats, LeaseTable};
use tdfs_graph::GraphView;
use tdfs_query::plan::QueryPlan;
use tdfs_query::Pattern;

use crate::snapshot::{self, QuerySnapshot};

/// Durable-execution knobs (per service, overridable per query via
/// [`crate::QueryRequest::with_durable`]).
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Whether queries run durably by default. Durable execution shards
    /// the query over leased edge ranges: worker panics and stalls are
    /// recovered instead of failing the query, and
    /// [`crate::Service::snapshot`] / [`crate::Service::resume`] work.
    pub enabled: bool,
    /// Admitted edges per shard task. Smaller shards mean finer
    /// recovery granularity and more lease traffic.
    pub shard_edges: usize,
    /// Lease duration; a shard not acked within it is considered
    /// stalled and reclaimed. Reclaiming a *live* worker is safe (its
    /// ack is fenced, its run revoked) — the timeout trades wasted work
    /// against recovery latency, never correctness.
    pub lease_timeout: Duration,
    /// Watchdog period: reap/revoke/heartbeat cadence.
    pub watchdog_interval: Duration,
    /// Fail the query as [`EngineError::Wedged`] once any task's epoch
    /// exceeds this bound (it was reclaimed this many times without
    /// ever acking).
    pub max_task_epochs: u32,
    /// Shard-worker threads per durable query; they race on the lease
    /// table and split the query's warp budget between them. `0` (the
    /// default) uses the query's `num_warps`, each shard running
    /// single-warp, so total parallelism matches the non-durable run;
    /// explicit lower counts give each shard a multi-warp engine run.
    pub workers: usize,
}

impl Default for DurableConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            shard_edges: 512,
            lease_timeout: Duration::from_millis(500),
            watchdog_interval: Duration::from_millis(10),
            max_task_epochs: 16,
            workers: 0,
        }
    }
}

/// A contiguous range of the query's admitted initial-edge list —
/// the durable layer's task payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// First edge index (inclusive).
    pub start: u32,
    /// One past the last edge index.
    pub end: u32,
}

impl Shard {
    fn len(self) -> u32 {
        self.end - self.start
    }

    /// Straggler decomposition: halve when possible. Public so the
    /// cluster coordinator reaps its remote ledger with the exact
    /// in-process policy.
    pub fn split(&self) -> Vec<Shard> {
        if self.len() > 1 {
            let mid = self.start + self.len() / 2;
            vec![
                Shard {
                    start: self.start,
                    end: mid,
                },
                Shard {
                    start: mid,
                    end: self.end,
                },
            ]
        } else {
            vec![*self]
        }
    }
}

/// Point-in-time progress of a durable query.
#[derive(Debug, Clone)]
pub struct QueryProgress {
    /// Service-assigned query id.
    pub query_id: u64,
    /// Unclaimed shard tasks.
    pub tasks_pending: usize,
    /// Shards under a live lease right now.
    pub tasks_outstanding: usize,
    /// Shards acked (published) so far, including before any resume.
    pub tasks_acked: u64,
    /// Matches published so far.
    pub matches: u64,
    /// Embeddings emitted to sinks so far.
    pub emitted: u64,
    /// Highest lease epoch any task reached (wedge indicator).
    pub max_epoch: u32,
    /// How many times this query has been resumed.
    pub resumes: u32,
    /// Lifetime lease counters of this query's ledger.
    pub leases: LeaseStats,
    /// Whether the query has finished.
    pub done: bool,
    /// Failure diagnostics attached by the watchdog (wedged queries).
    pub diagnostics: Option<String>,
}

/// Shared state of one durable query: the ledger plus everything a
/// snapshot or progress probe needs. Registered with the service when
/// the job starts and retained after completion (bounded; see
/// `DURABLE_RETAIN` in `service.rs`) so post-completion snapshots work.
pub struct DurableState {
    pub(crate) query_id: u64,
    pub(crate) graph_name: String,
    /// Catalog graph version the shards were carved against (shard
    /// ranges index that version's admitted-edge space).
    pub(crate) graph_version: u64,
    pub(crate) pattern: Pattern,
    /// Engine configuration as serialized (no cancel / time limit).
    pub(crate) config: MatcherConfig,
    pub(crate) edge_count: u64,
    pub(crate) ledger: LeaseTable<Shard>,
    /// Matches published by accepted acks (including resumed base).
    pub(crate) matches: AtomicU64,
    /// Embeddings emitted to sinks (including resumed base).
    pub(crate) emitted: AtomicU64,
    /// Accepted acks (including resumed base).
    pub(crate) tasks_acked: AtomicU64,
    pub(crate) resumes: u32,
    /// Engine stats merged over accepted shards.
    pub(crate) run_stats: Mutex<RunStats>,
    /// First fatal error (TimeLimit / Stack / Wedged) wins.
    pub(crate) error: Mutex<Option<EngineError>>,
    /// Cancel token of each live lease, keyed by task id — raised on
    /// reclaim (zombie revocation) and on query-level cancel.
    active: Mutex<HashMap<u64, CancelFlag>>,
    /// Set by the overload governor: shard workers park (lease nothing
    /// new) while the flag holds; in-flight shards are revoked so their
    /// arena pages come back. Cleared on resume with a ledger poke.
    pub(crate) suspended: AtomicBool,
    /// The query's scope of the service memory budget, when one is
    /// configured — the governor ranks in-flight queries by its
    /// `in_use_pages()` to pick a suspension victim.
    pub(crate) scope: Option<MemoryBudget>,
    pub(crate) done: AtomicBool,
    /// Human-readable diagnostics attached by the watchdog on failure.
    pub(crate) diagnostics: Mutex<Option<String>>,
    /// Serializes ack publication (ledger ack + counter adds) against
    /// snapshot capture, so a snapshot never sees a task acked with its
    /// matches not yet added — that image would resume to an undercount.
    publish: Mutex<()>,
}

impl DurableState {
    fn record_error(&self, e: EngineError) {
        self.error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get_or_insert(e);
    }

    fn failed(&self) -> bool {
        self.error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some()
    }

    fn revoke(&self, task_id: u64) {
        if let Some(flag) = self
            .active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&task_id)
        {
            flag.cancel();
        }
    }

    pub(crate) fn revoke_all(&self) {
        for flag in self
            .active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            flag.cancel();
        }
    }

    /// Point-in-time progress.
    pub(crate) fn progress(&self) -> QueryProgress {
        QueryProgress {
            query_id: self.query_id,
            tasks_pending: self.ledger.pending_len(),
            tasks_outstanding: self.ledger.outstanding_len(),
            tasks_acked: self.tasks_acked.load(Ordering::Relaxed),
            matches: self.matches.load(Ordering::Relaxed),
            emitted: self.emitted.load(Ordering::Relaxed),
            max_epoch: self.ledger.max_epoch(),
            resumes: self.resumes,
            leases: self.ledger.stats(),
            done: self.done.load(Ordering::Relaxed),
            diagnostics: self
                .diagnostics
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone(),
        }
    }

    /// Serializes the recoverable state. Outstanding leases are demoted
    /// back to pending tasks in the image — taking a snapshot never
    /// disturbs the live run.
    pub(crate) fn to_snapshot(&self) -> Vec<u8> {
        let _publish = self
            .publish
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let cp = self.ledger.checkpoint();
        snapshot::encode(&QuerySnapshot {
            graph: self.graph_name.clone(),
            graph_version: self.graph_version,
            pattern: self.pattern.clone(),
            config: self.config.clone(),
            edge_count: self.edge_count,
            matches: self.matches.load(Ordering::Relaxed),
            emitted: self.emitted.load(Ordering::Relaxed),
            tasks_acked: self.tasks_acked.load(Ordering::Relaxed),
            resumes: self.resumes,
            next_task_id: cp.next_id,
            acked: cp.acked,
            pending: cp.pending,
        })
    }

    pub(crate) fn lease_stats(&self) -> LeaseStats {
        self.ledger.stats()
    }
}

/// Per-shard emission buffer: the engine emits position-indexed
/// matches into it; they are flushed to the real sinks only after the
/// fence pre-check, so a recovered shard's emissions are not duplicated
/// in the fault-free path.
struct ShardBuffer {
    rows: Mutex<Vec<Vec<u32>>>,
}

impl MatchSink for ShardBuffer {
    fn emit(&self, m: &[u32]) {
        self.rows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(m.to_vec());
    }
}

/// Everything a durable run needs from the job, borrowed for the scope
/// of the worker threads.
pub(crate) struct DurableJob<'a, V: GraphView> {
    pub graph: &'a V,
    pub plan: &'a QueryPlan,
    /// Base engine configuration (cancel token *not* attached — shards
    /// get private tokens).
    pub config: &'a MatcherConfig,
    /// The full admitted-edge list shards index into.
    pub edges: &'a [(u32, u32)],
    /// Query-level cancellation (client handle / collect limit).
    pub cancel: &'a CancelFlag,
    /// Absolute deadline, if any.
    pub deadline: Option<Instant>,
    /// Bounded match collector (from `collect_limit`).
    pub collector: Option<&'a CollectSink>,
    /// Client streaming sink (pattern-vertex indexing).
    pub client: Option<&'a dyn MatchSink>,
}

/// Builds the shared state for a fresh durable query, sharding the
/// admitted edge list.
///
/// Shard boundaries equalize *estimated work*, not edge count: a walk
/// rooted at a hub edge is far heavier than one rooted at the fringe,
/// and on scale-free graphs equal-count shards leave one worker
/// grinding a hub shard long after the rest drained. Endpoint degree
/// sum is the first-order work estimate; the shard count still follows
/// `shard_edges` so recovery granularity is unchanged on average.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fresh_state<V: GraphView>(
    query_id: u64,
    graph_name: String,
    graph_version: u64,
    pattern: Pattern,
    config: MatcherConfig,
    graph: &V,
    edges: &[(u32, u32)],
    dcfg: &DurableConfig,
    scope: Option<MemoryBudget>,
) -> Arc<DurableState> {
    let ledger = LeaseTable::new(dcfg.lease_timeout);
    let edge_count = edges.len() as u64;
    for shard in shard_cuts(graph, edges, dcfg.shard_edges) {
        ledger.submit(shard);
    }
    Arc::new(state_with(
        query_id,
        graph_name,
        graph_version,
        pattern,
        config,
        edge_count,
        ledger,
        0,
        0,
        0,
        0,
        scope,
    ))
}

/// Cuts an admitted edge list into degree-weighted [`Shard`]s of
/// roughly `shard_edges` edges each.
///
/// Shard boundaries equalize *estimated work*, not edge count: a walk
/// rooted at a hub edge is far heavier than one rooted at the fringe.
/// Endpoint degree sum is the first-order work estimate; the shard
/// count still follows `shard_edges`, so recovery granularity is
/// unchanged on average. This is the single cutting policy for both the
/// in-process durable path ([`fresh_state`]) and the cluster
/// coordinator partitioning a query across nodes — identical cuts mean
/// a shipped snapshot's shard ranges mean the same thing everywhere.
pub fn shard_cuts<V: GraphView>(graph: &V, edges: &[(u32, u32)], shard_edges: usize) -> Vec<Shard> {
    let shards = (edges.len() as u64).div_ceil(shard_edges.max(1) as u64);
    let mut out = Vec::new();
    if shards == 0 {
        return out;
    }
    let weight = |&(u, v): &(u32, u32)| (graph.degree(u) + graph.degree(v)) as u64 + 1;
    let total: u64 = edges.iter().map(weight).sum();
    let mut acc = 0u64;
    let mut cut = 0u64;
    let mut start = 0usize;
    for (i, e) in edges.iter().enumerate() {
        acc += weight(e);
        // Cut once this shard holds its proportional share of the
        // total weight (saturating at one edge per shard).
        if acc.saturating_mul(shards) >= (cut + 1) * total && i + 1 > start {
            out.push(Shard {
                start: start as u32,
                end: (i + 1) as u32,
            });
            start = i + 1;
            cut += 1;
        }
    }
    if start < edges.len() {
        out.push(Shard {
            start: start as u32,
            end: edges.len() as u32,
        });
    }
    out
}

/// Rebuilds the shared state from a decoded snapshot.
pub(crate) fn resumed_state(
    query_id: u64,
    snap: &QuerySnapshot,
    dcfg: &DurableConfig,
    scope: Option<MemoryBudget>,
) -> Arc<DurableState> {
    let ledger = LeaseTable::new(dcfg.lease_timeout);
    for &(id, epoch, shard) in &snap.pending {
        ledger.restore(id, epoch, shard);
    }
    for &id in &snap.acked {
        ledger.restore_acked(id);
    }
    Arc::new(state_with(
        query_id,
        snap.graph.clone(),
        snap.graph_version,
        snap.pattern.clone(),
        snap.config.clone(),
        snap.edge_count,
        ledger,
        snap.matches,
        snap.emitted,
        snap.tasks_acked,
        snap.resumes + 1,
        scope,
    ))
}

#[allow(clippy::too_many_arguments)]
fn state_with(
    query_id: u64,
    graph_name: String,
    graph_version: u64,
    pattern: Pattern,
    config: MatcherConfig,
    edge_count: u64,
    ledger: LeaseTable<Shard>,
    matches: u64,
    emitted: u64,
    tasks_acked: u64,
    resumes: u32,
    scope: Option<MemoryBudget>,
) -> DurableState {
    DurableState {
        query_id,
        graph_name,
        graph_version,
        pattern,
        config,
        edge_count,
        ledger,
        matches: AtomicU64::new(matches),
        emitted: AtomicU64::new(emitted),
        tasks_acked: AtomicU64::new(tasks_acked),
        resumes,
        run_stats: Mutex::new(RunStats::default()),
        error: Mutex::new(None),
        active: Mutex::new(HashMap::new()),
        suspended: AtomicBool::new(false),
        scope,
        done: AtomicBool::new(false),
        diagnostics: Mutex::new(None),
        publish: Mutex::new(()),
    }
}

/// Runs a durable query to completion: spawns the shard workers, drives
/// the watchdog on the calling thread, and returns the assembled
/// result. The caller (the service worker) owns admission bookkeeping
/// and outcome delivery.
pub(crate) fn execute<V: GraphView>(
    state: &Arc<DurableState>,
    job: &DurableJob<'_, V>,
    dcfg: &DurableConfig,
    start: Instant,
) -> Result<RunResult, EngineError> {
    let workers = if dcfg.workers == 0 {
        job.config.num_warps
    } else {
        dcfg.workers
    }
    .max(1);
    // The query's warp budget is split across the shard workers (auto:
    // one single-warp engine run per worker, so total parallelism
    // matches the non-durable run); configuring fewer workers gives
    // each shard a multi-warp run with the engine balancing inside it.
    let shard_warps = (job.config.num_warps / workers).max(1);
    let live = AtomicUsize::new(workers);

    std::thread::scope(|scope| {
        for wid in 0..workers {
            let state = Arc::clone(state);
            let live = &live;
            scope.spawn(move || {
                // Decrement through a drop guard: the watchdog's exit
                // condition must hold even if a shard worker unwinds
                // through a path no catch_unwind covers. The poke wakes
                // the watchdog out of its ledger wait immediately.
                struct LiveGuard<'a>(&'a AtomicUsize, &'a DurableState);
                impl Drop for LiveGuard<'_> {
                    fn drop(&mut self) {
                        self.0.fetch_sub(1, Ordering::Release);
                        self.1.ledger.poke();
                    }
                }
                let _live = LiveGuard(live, &state);
                shard_worker(&state, job, wid as u32, shard_warps);
            });
        }
        watchdog(state, job, dcfg, &live);
    });

    if let Some(e) = *state
        .error
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return Err(e);
    }
    let mut stats = state
        .run_stats
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    stats.cancelled = job.cancel.is_cancelled();
    Ok(RunResult {
        matches: state.matches.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        stats,
    })
}

fn shard_worker<V: GraphView>(
    state: &Arc<DurableState>,
    job: &DurableJob<'_, V>,
    wid: u32,
    shard_warps: usize,
) {
    loop {
        if state.failed() || job.cancel.is_cancelled() {
            return;
        }
        if let Some(d) = job.deadline {
            if Instant::now() > d {
                state.record_error(EngineError::TimeLimit);
                return;
            }
        }
        // Suspended by the overload governor: park without leasing so
        // the paused query holds no arena pages, but keep honoring
        // cancel / deadline / failure above. Resume pokes the condvar.
        if state.suspended.load(Ordering::Acquire) {
            state.ledger.wait_change(Duration::from_millis(1));
            continue;
        }
        // Cache-conscious grant: shards whose first root edge's source
        // row lives in the same page-sized window as this worker's
        // previous shard are preferred within the lease table's bounded
        // window — the degree-weighted shard cuts put neighboring (and
        // thus page-sharing) edges in adjacent shards, so the match is
        // common and keeps candidate pages hot per worker.
        let locality = |s: &Shard| {
            job.edges
                .get(s.start as usize)
                .map(|&(u, _)| tdfs_mem::locality_key(job.graph.neighbors(u)))
                .unwrap_or(u64::MAX)
        };
        let Some(lease) = state.ledger.lease_with_affinity(wid, locality) else {
            if state.ledger.drained() {
                return;
            }
            state.ledger.wait_change(Duration::from_millis(1));
            continue;
        };
        run_shard(state, job, &lease, shard_warps);
    }
}

fn run_shard<V: GraphView>(
    state: &Arc<DurableState>,
    job: &DurableJob<'_, V>,
    lease: &Lease<Shard>,
    shard_warps: usize,
) {
    // Private cancel token: raised by the watchdog on reclaim (zombie
    // revocation) or when the query-level token / a fatal error fires.
    let flag = CancelFlag::new();
    state
        .active
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(lease.task_id, flag.clone());

    let mut cfg = job.config.clone().with_cancel(flag).with_warps(shard_warps);
    if let Some(d) = job.deadline {
        cfg.time_limit = Some(d.saturating_duration_since(Instant::now()));
    }
    // A shard seeds at most `shard.len()` walks, so the full-query task
    // queue is outsized for it; a smaller ring keeps per-shard setup
    // cheap, and queue-full still degrades to in-place processing.
    let shard_queue = (lease.task.len() as usize * 4).max(1024);
    cfg.queue_capacity = cfg.queue_capacity.min(shard_queue);
    let shard = lease.task;
    let edges = job.edges[shard.start as usize..shard.end as usize].to_vec();
    let buffer = (job.collector.is_some() || job.client.is_some()).then(|| ShardBuffer {
        rows: Mutex::new(Vec::new()),
    });
    let sink_opt = buffer.as_ref().map(|b| b as &dyn MatchSink);

    // The acceptance-test kill point, inside the unwind boundary so a
    // scripted panic models a worker dying mid-shard (and a stall a
    // straggler) without unwinding the shard-worker thread itself.
    let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
        crate::chaos_point!("service.worker.run");
        match_plan_on_edges(job.graph, job.plan, &cfg, edges, sink_opt)
    }));

    state
        .active
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .remove(&lease.task_id);

    match run {
        Err(_panic) => {
            // Dead worker (the thread survived, the shard attempt did
            // not): reclaim the lease now, splitting the shard so a
            // poisonous range narrows with every recovery.
            state.ledger.fail(lease, |s| s.split());
        }
        Ok(Err(e)) => {
            // Engine failure (stack / time limit) fails the query; put
            // the shard back so a snapshot still sees it as unfinished.
            state.ledger.release(lease);
            state.record_error(e);
        }
        Ok(Ok(r)) => {
            if r.stats.cancelled {
                // Query-level cancel or zombie revocation interrupted
                // the shard: its partial count must never publish.
                state.ledger.release(lease);
                return;
            }
            // The zombie window between completing the work and
            // publishing it — where a stalled worker races its reaper.
            crate::chaos_point!("service.durable.ack");
            // Flush emissions before the ack (fence pre-check keeps the
            // fault-free path exactly-once; see module docs). A client
            // sink that panics is a recovered fault like any other —
            // the lease fails, the shard retries, and a deterministic
            // panicker wedges the query instead of killing workers.
            if let Some(buffer) = &buffer {
                let flushed = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    if state.ledger.is_current(lease) {
                        flush_emissions(state, job, buffer);
                    }
                }));
                if flushed.is_err() {
                    state.ledger.fail(lease, |s| s.split());
                    return;
                }
            }
            let publish = state
                .publish
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if state.ledger.ack(lease) == AckOutcome::Accepted {
                state.matches.fetch_add(r.matches, Ordering::Relaxed);
                state.tasks_acked.fetch_add(1, Ordering::Relaxed);
                state
                    .run_stats
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .merge(&r.stats);
            }
            drop(publish);
            // A fenced ack discards the count: the reclaimed copy of
            // this shard publishes instead.
        }
    }
}

fn flush_emissions<V: GraphView>(
    state: &DurableState,
    job: &DurableJob<'_, V>,
    buffer: &ShardBuffer,
) {
    let rows = std::mem::take(
        &mut *buffer
            .rows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    let order = &job.plan.order.order;
    for m in &rows {
        if let Some(c) = job.collector {
            c.emit(m);
        }
        if let Some(client) = job.client {
            let mut by_vertex = vec![0u32; m.len()];
            for (i, &v) in m.iter().enumerate() {
                by_vertex[order[i]] = v;
            }
            client.emit(&by_vertex);
        }
    }
    state
        .emitted
        .fetch_add(rows.len() as u64, Ordering::Relaxed);
}

/// The per-query watchdog, run on the service worker's own thread while
/// the shard workers execute. Each tick: propagate cancellation, reap
/// expired leases (straggler decomposition + zombie revocation), and
/// check the wedge bound.
fn watchdog<V: GraphView>(
    state: &Arc<DurableState>,
    job: &DurableJob<'_, V>,
    dcfg: &DurableConfig,
    live: &AtomicUsize,
) {
    // Park on the ledger's condvar rather than sleep-polling: any
    // grant/ack/requeue wakes the watchdog, and an exiting worker pokes
    // it, so query completion is never gated on the reap cadence and an
    // idle watchdog costs no timeslices (which matters when shard
    // workers and watchdog share cores).
    let tick = dcfg.watchdog_interval.min(Duration::from_millis(50));
    while live.load(Ordering::Acquire) > 0 {
        state.ledger.wait_change(tick);
        if job.cancel.is_cancelled() || state.failed() {
            state.revoke_all();
            continue;
        }
        for task_id in state.ledger.reap(Instant::now(), |s| s.split()) {
            state.revoke(task_id);
        }
        let max_epoch = state.ledger.max_epoch();
        if max_epoch > dcfg.max_task_epochs {
            *state
                .diagnostics
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(format!(
                "wedged: a shard reached lease epoch {max_epoch} (limit {}); {} pending, {} \
                 outstanding, {} acked",
                dcfg.max_task_epochs,
                state.ledger.pending_len(),
                state.ledger.outstanding_len(),
                state.tasks_acked.load(Ordering::Relaxed),
            ));
            state.record_error(EngineError::Wedged);
            state.revoke_all();
        }
    }
}
