//! `tdfsck` — the state-directory verifier and repairer.
//!
//! [`fsck`] audits a service state directory (the layout
//! `crates/service/src/disk.rs` maintains) without trusting any of it:
//! the intent journal, the manifest, every container (full segment
//! verification), every delta sidecar (CRC + does-the-overlay-fit-the-
//! base), every snapshot (TDFSSNAP decode + does-it-reference-a-known-
//! graph-at-its-version), staging leftovers, and files nothing
//! references. Every discrepancy becomes a typed [`Finding`]; nothing
//! panics, nothing is silently "fixed".
//!
//! In **repair** mode the same pass applies the safe remediation for
//! each finding: journal recovery is applied (roll forward / roll
//! back), a corrupt journal or sidecar or container is moved to
//! `quarantine/` (never deleted — salvage must not destroy evidence),
//! the manifest is rebuilt from the containers that actually verify,
//! and staging garbage is cleared. Repairs only ever *narrow* the
//! catalog to its provably consistent subset; a graph whose container
//! verifies is never touched.
//!
//! [`Service::open_salvage`](crate::Service::open_salvage) runs repair
//! and then a normal open, returning the report alongside the service —
//! the "get me back up and tell me what was lost" entry point. The
//! `tdfsck` binary wraps the same function for offline use.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use tdfs_graph::vfs::{RealFs, Vfs};
use tdfs_graph::{DeltaCsr, GraphBase, MapOptions, MmapGraph};

use crate::disk::{DiskCatalog, PersistedDelta, Recovery, StorageError};
use crate::snapshot;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Observation only; the directory is fully usable.
    Info,
    /// Suspicious but recoverable without losing committed state
    /// (staging garbage, stale intent, orphan file).
    Warning,
    /// State is missing or fails validation; opening strictly would
    /// fail or silently drop data without repair.
    Error,
}

/// What kind of discrepancy a [`Finding`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// The state directory itself does not exist.
    MissingStateDir,
    /// A layout subdirectory (`graphs/`, `snapshots/`, `tmp/`) is gone.
    MissingLayout,
    /// A leftover staging file under `tmp/`.
    StagingLeftover,
    /// A decodable intent journal from an interrupted transition.
    StaleIntent,
    /// The intent journal fails magic/CRC validation.
    CorruptJournal,
    /// `MANIFEST` is absent.
    MissingManifest,
    /// `MANIFEST` fails magic/CRC/structure validation.
    CorruptManifest,
    /// A manifest entry whose container file is gone.
    MissingContainer,
    /// A container that fails full TDFSGRPH verification.
    CorruptContainer,
    /// A registered graph with no sidecar (loads at version 0).
    MissingSidecar,
    /// A sidecar that fails magic/CRC/structure validation.
    CorruptSidecar,
    /// A sidecar whose overlay does not fit its container base.
    OverlayMismatch,
    /// A snapshot that fails TDFSSNAP decoding.
    CorruptSnapshot,
    /// A decodable snapshot that cannot resume against the current
    /// catalog (unknown graph or version moved on).
    UnresumableSnapshot,
    /// A file nothing references (unknown name in `graphs/` or
    /// `snapshots/`, or a verifying container absent from the manifest).
    OrphanFile,
    /// Contents of `quarantine/` from this or earlier repairs.
    Quarantined,
}

/// One audited discrepancy.
#[derive(Debug, Clone)]
pub struct Finding {
    pub severity: Severity,
    pub kind: FindingKind,
    /// The path (relative to the state directory) or graph/snapshot
    /// identifier the finding is about.
    pub subject: String,
    /// Human-readable specifics.
    pub detail: String,
    /// What repair mode did about it (`None` in check-only mode or when
    /// no action applies).
    pub repair: Option<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Info => "info",
            Severity::Warning => "warn",
            Severity::Error => "ERROR",
        };
        write!(
            f,
            "{sev:5} {:?} {}: {}",
            self.kind, self.subject, self.detail
        )?;
        if let Some(r) = &self.repair {
            write!(f, " [repaired: {r}]")?;
        }
        Ok(())
    }
}

/// The outcome of one [`fsck`] pass.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    pub findings: Vec<Finding>,
    /// Whether this pass ran in repair mode.
    pub repaired: bool,
}

impl FsckReport {
    /// Number of [`Severity::Error`] findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of [`Severity::Warning`] findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, s: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == s).count()
    }

    /// No errors and no warnings (info findings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0 && self.warnings() == 0
    }

    fn push(
        &mut self,
        severity: Severity,
        kind: FindingKind,
        subject: impl Into<String>,
        detail: impl Into<String>,
    ) -> &mut Finding {
        self.findings.push(Finding {
            severity,
            kind,
            subject: subject.into(),
            detail: detail.into(),
            repair: None,
        });
        self.findings.last_mut().unwrap()
    }
}

impl std::fmt::Display for FsckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "tdfsck: {} error(s), {} warning(s), {} finding(s) total",
            self.errors(),
            self.warnings(),
            self.findings.len()
        )
    }
}

/// Audits (and with `repair`, remediates) the state directory at `dir`
/// on the real filesystem. See the module docs for the check list.
/// Check-only mode never mutates the directory.
pub fn fsck(dir: impl AsRef<Path>, repair: bool) -> Result<FsckReport, StorageError> {
    fsck_with(dir, RealFs::arc(), repair)
}

/// [`fsck`] through an injected [`Vfs`] seam (all repair mutations flow
/// through it; reads go straight to the OS like the rest of the stack).
pub fn fsck_with(
    dir: impl AsRef<Path>,
    vfs: Arc<dyn Vfs>,
    repair: bool,
) -> Result<FsckReport, StorageError> {
    Auditor {
        cat: DiskCatalog::probe(dir.as_ref(), vfs),
        root: dir.as_ref().to_path_buf(),
        repair,
        quarantine_seq: 0,
    }
    .run()
}

struct Auditor {
    cat: DiskCatalog,
    root: PathBuf,
    repair: bool,
    quarantine_seq: u64,
}

impl Auditor {
    fn run(mut self) -> Result<FsckReport, StorageError> {
        let mut report = FsckReport {
            repaired: self.repair,
            ..FsckReport::default()
        };
        if !self.root.is_dir() {
            report.push(
                Severity::Error,
                FindingKind::MissingStateDir,
                self.root.display().to_string(),
                "state directory does not exist",
            );
            return Ok(report);
        }
        self.check_layout(&mut report)?;
        self.check_staging(&mut report)?;
        self.check_journal(&mut report)?;
        let names = self.check_manifest(&mut report)?;
        let healthy = self.check_graphs(&mut report, &names)?;
        self.check_graph_orphans(&mut report, &names)?;
        self.check_snapshots(&mut report, &healthy)?;
        self.report_quarantine(&mut report);
        Ok(report)
    }

    /// Moves `path` into `quarantine/` (creating it), never clobbering
    /// an earlier inmate. Returns the repair note.
    fn quarantine(&mut self, path: &Path) -> Result<String, StorageError> {
        let qdir = self.root.join("quarantine");
        self.cat.vfs().create_dir_all(&qdir)?;
        let base = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed".to_owned());
        let mut dest = qdir.join(&base);
        while dest.exists() {
            self.quarantine_seq += 1;
            dest = qdir.join(format!("{base}.{}", self.quarantine_seq));
        }
        self.cat.vfs().rename(path, &dest)?;
        self.cat.vfs().sync_dir(&qdir)?;
        if let Some(parent) = path.parent() {
            self.cat.vfs().sync_dir(parent)?;
        }
        Ok(format!(
            "moved to quarantine/{}",
            dest.file_name().unwrap().to_string_lossy()
        ))
    }

    fn check_layout(&mut self, report: &mut FsckReport) -> Result<(), StorageError> {
        for sub in ["graphs", "snapshots", "tmp"] {
            if !self.root.join(sub).is_dir() {
                let f = report.push(
                    Severity::Warning,
                    FindingKind::MissingLayout,
                    format!("{sub}/"),
                    "layout directory missing",
                );
                if self.repair {
                    self.cat.vfs().create_dir_all(&self.root.join(sub))?;
                    f.repair = Some("created".to_owned());
                }
            }
        }
        Ok(())
    }

    fn check_staging(&mut self, report: &mut FsckReport) -> Result<(), StorageError> {
        let tmp = self.root.join("tmp");
        if !tmp.is_dir() {
            return Ok(());
        }
        for name in self.cat.vfs().read_dir(&tmp)? {
            let f = report.push(
                Severity::Warning,
                FindingKind::StagingLeftover,
                format!("tmp/{}", name.display()),
                "staging file from an interrupted write",
            );
            if self.repair {
                self.cat.vfs().remove_file(&tmp.join(&name))?;
                f.repair = Some("removed".to_owned());
            }
        }
        Ok(())
    }

    fn check_journal(&mut self, report: &mut FsckReport) -> Result<(), StorageError> {
        match self.cat.read_journal() {
            Ok(None) => {}
            Ok(Some(intent)) => {
                let f = report.push(
                    Severity::Warning,
                    FindingKind::StaleIntent,
                    "JOURNAL",
                    format!("interrupted transition: {intent:?}"),
                );
                if self.repair {
                    let recovery = self.cat.recover_journal()?;
                    f.repair = Some(match recovery {
                        Recovery::RolledForward(_) => "rolled forward".to_owned(),
                        Recovery::RolledBack(_) => "rolled back".to_owned(),
                        Recovery::Clean => "already clean".to_owned(),
                    });
                }
            }
            Err(StorageError::Journal(reason)) => {
                let f = report.push(
                    Severity::Error,
                    FindingKind::CorruptJournal,
                    "JOURNAL",
                    format!("undecodable intent journal: {reason}"),
                );
                if self.repair {
                    let note = self.quarantine(&self.cat.journal_path())?;
                    f.repair = Some(note);
                }
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }

    /// Returns the manifest names to audit (possibly a rebuilt set).
    fn check_manifest(&mut self, report: &mut FsckReport) -> Result<Vec<String>, StorageError> {
        let (kind, detail) = match self.cat.read_manifest() {
            Ok(names) => return Ok(names),
            Err(StorageError::Manifest("missing")) => {
                (FindingKind::MissingManifest, "MANIFEST absent".to_owned())
            }
            Err(StorageError::Manifest(reason)) => (
                FindingKind::CorruptManifest,
                format!("MANIFEST invalid: {reason}"),
            ),
            Err(e) => return Err(e),
        };
        let corrupt = kind == FindingKind::CorruptManifest;
        let f = report.push(Severity::Error, kind, "MANIFEST", detail);
        if !self.repair {
            // Check-only: audit whatever containers exist so the report
            // still covers them.
            return Ok(self.verifying_container_names());
        }
        let mut notes = Vec::new();
        if corrupt {
            notes.push(self.quarantine(&self.root.join("MANIFEST"))?);
        }
        let names = self.verifying_container_names();
        self.cat.write_manifest(&names)?;
        notes.push(format!(
            "rebuilt from {} verifying container(s)",
            names.len()
        ));
        f.repair = Some(notes.join("; "));
        Ok(names)
    }

    /// Graph names under `graphs/` whose containers pass full
    /// verification — the trustworthy basis for a manifest rebuild.
    fn verifying_container_names(&self) -> Vec<String> {
        let Ok(entries) = self.cat.vfs().read_dir(&self.root.join("graphs")) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .iter()
            .filter_map(|n| n.to_str())
            .filter_map(|n| n.strip_suffix(".tdfsgrph"))
            .filter(|name| {
                crate::disk::validate_name(name).is_ok()
                    && MmapGraph::open_with(self.cat.graph_path(name), &MapOptions::default())
                        .is_ok()
            })
            .map(str::to_owned)
            .collect();
        names.sort_unstable();
        names
    }

    /// Audits each manifest entry; returns the healthy `(name, version)`
    /// set for the snapshot cross-check.
    fn check_graphs(
        &mut self,
        report: &mut FsckReport,
        names: &[String],
    ) -> Result<Vec<(String, u64)>, StorageError> {
        let mut healthy = Vec::new();
        for name in names {
            let container = self.cat.graph_path(name);
            if !container.exists() {
                let f = report.push(
                    Severity::Error,
                    FindingKind::MissingContainer,
                    name.clone(),
                    "manifest entry has no container file",
                );
                if self.repair {
                    let mut notes = vec![self.drop_from_manifest(name)?];
                    if self.cat.delta_path(name).exists() {
                        let p = self.cat.delta_path(name);
                        notes.push(self.quarantine(&p)?);
                    }
                    f.repair = Some(notes.join("; "));
                }
                continue;
            }
            // Full verification: header, directory, per-segment CRCs and
            // a complete decode — after this the container cannot fail
            // at query time.
            let mapped = match MmapGraph::open_with(&container, &MapOptions::default()) {
                Ok(m) => m,
                Err(e) => {
                    let f = report.push(
                        Severity::Error,
                        FindingKind::CorruptContainer,
                        name.clone(),
                        format!("container fails verification: {e}"),
                    );
                    if self.repair {
                        let mut notes = vec![self.quarantine(&container)?];
                        if self.cat.delta_path(name).exists() {
                            let p = self.cat.delta_path(name);
                            notes.push(self.quarantine(&p)?);
                        }
                        notes.push(self.drop_from_manifest(name)?);
                        f.repair = Some(notes.join("; "));
                    }
                    continue;
                }
            };
            match self.cat.read_delta(name) {
                Ok(None) => {
                    let f = report.push(
                        Severity::Warning,
                        FindingKind::MissingSidecar,
                        name.clone(),
                        "no delta sidecar; graph will load at version 0",
                    );
                    if self.repair {
                        self.cat.write_delta_raw(name, &PersistedDelta::default())?;
                        f.repair = Some("wrote empty sidecar at version 0".to_owned());
                    }
                    healthy.push((name.clone(), 0));
                }
                Ok(Some(delta)) => {
                    let fits = delta.inserts.is_empty() && delta.deletes.is_empty()
                        || DeltaCsr::with_overlay(
                            GraphBase::Mapped(Arc::new(mapped)),
                            delta.version,
                            &delta.inserts,
                            &delta.deletes,
                        )
                        .is_ok();
                    if fits {
                        healthy.push((name.clone(), delta.version));
                    } else {
                        let f = report.push(
                            Severity::Error,
                            FindingKind::OverlayMismatch,
                            name.clone(),
                            format!(
                                "sidecar overlay (version {}) does not fit the container base",
                                delta.version
                            ),
                        );
                        if self.repair {
                            let p = self.cat.delta_path(name);
                            let mut notes = vec![self.quarantine(&p)?];
                            self.cat.write_delta_raw(name, &PersistedDelta::default())?;
                            notes.push(
                                "reset to empty sidecar at version 0 (overlay edges lost)"
                                    .to_owned(),
                            );
                            f.repair = Some(notes.join("; "));
                            healthy.push((name.clone(), 0));
                        }
                    }
                }
                Err(StorageError::Delta { reason, .. }) => {
                    let f = report.push(
                        Severity::Error,
                        FindingKind::CorruptSidecar,
                        name.clone(),
                        format!("sidecar invalid: {reason}"),
                    );
                    if self.repair {
                        let p = self.cat.delta_path(name);
                        let mut notes = vec![self.quarantine(&p)?];
                        self.cat.write_delta_raw(name, &PersistedDelta::default())?;
                        notes.push(
                            "reset to empty sidecar at version 0 (overlay edges lost)".to_owned(),
                        );
                        f.repair = Some(notes.join("; "));
                        healthy.push((name.clone(), 0));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(healthy)
    }

    fn drop_from_manifest(&self, name: &str) -> Result<String, StorageError> {
        let mut names = match self.cat.read_manifest() {
            Ok(n) => n,
            // A manifest that is itself broken was already handled.
            Err(_) => return Ok("manifest unreadable; entry not dropped".to_owned()),
        };
        names.retain(|n| n != name);
        self.cat.write_manifest(&names)?;
        Ok("dropped from manifest".to_owned())
    }

    fn check_graph_orphans(
        &mut self,
        report: &mut FsckReport,
        names: &[String],
    ) -> Result<(), StorageError> {
        let gdir = self.root.join("graphs");
        if !gdir.is_dir() {
            return Ok(());
        }
        for entry in self.cat.vfs().read_dir(&gdir)? {
            let fname = entry.to_string_lossy().into_owned();
            let known = fname
                .strip_suffix(".tdfsgrph")
                .or_else(|| fname.strip_suffix(".delta"))
                .is_some_and(|stem| names.iter().any(|n| n == stem));
            if known {
                continue;
            }
            let f = report.push(
                Severity::Warning,
                FindingKind::OrphanFile,
                format!("graphs/{fname}"),
                "not referenced by the manifest",
            );
            if self.repair {
                let p = gdir.join(&entry);
                let note = self.quarantine(&p)?;
                f.repair = Some(note);
            }
        }
        Ok(())
    }

    fn check_snapshots(
        &mut self,
        report: &mut FsckReport,
        healthy: &[(String, u64)],
    ) -> Result<(), StorageError> {
        let sdir = self.root.join("snapshots");
        if !sdir.is_dir() {
            return Ok(());
        }
        for entry in self.cat.vfs().read_dir(&sdir)? {
            let fname = entry.to_string_lossy().into_owned();
            let id = fname
                .strip_suffix(".tdfssnap")
                .and_then(|n| n.parse::<u64>().ok());
            let Some(id) = id else {
                let f = report.push(
                    Severity::Warning,
                    FindingKind::OrphanFile,
                    format!("snapshots/{fname}"),
                    "not a <id>.tdfssnap checkpoint",
                );
                if self.repair {
                    let p = sdir.join(&entry);
                    let note = self.quarantine(&p)?;
                    f.repair = Some(note);
                }
                continue;
            };
            let bytes = std::fs::read(sdir.join(&entry))?;
            match snapshot::decode(&bytes) {
                Err(e) => {
                    let f = report.push(
                        Severity::Error,
                        FindingKind::CorruptSnapshot,
                        format!("snapshots/{fname}"),
                        format!("snapshot {id} fails decoding: {e}"),
                    );
                    if self.repair {
                        let p = sdir.join(&entry);
                        let note = self.quarantine(&p)?;
                        f.repair = Some(note);
                    }
                }
                Ok(snap) => {
                    // Cross-check against the audited catalog: a
                    // snapshot for an unknown graph or a moved-on
                    // version will fail resume with a typed error at
                    // open; surface it here too, but leave the file for
                    // inspection (resume failures are not corruption).
                    let matches = healthy
                        .iter()
                        .any(|(n, v)| *n == snap.graph && *v == snap.graph_version);
                    if !matches {
                        report.push(
                            Severity::Info,
                            FindingKind::UnresumableSnapshot,
                            format!("snapshots/{fname}"),
                            format!(
                                "references graph {:?} at version {}, not in the current catalog",
                                snap.graph, snap.graph_version
                            ),
                        );
                    }
                }
            }
        }
        Ok(())
    }

    fn report_quarantine(&mut self, report: &mut FsckReport) {
        let qdir = self.root.join("quarantine");
        if let Ok(entries) = self.cat.vfs().read_dir(&qdir) {
            if !entries.is_empty() {
                report.push(
                    Severity::Info,
                    FindingKind::Quarantined,
                    "quarantine/",
                    format!("{} quarantined file(s) held for inspection", entries.len()),
                );
            }
        }
    }
}
