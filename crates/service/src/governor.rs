//! The overload governor: cross-query resource control.
//!
//! The engine bounds *per-warp* memory (paged stacks); this module
//! bounds the *service*: N concurrent heavy queries must degrade
//! gracefully instead of collectively exhausting memory or starving the
//! queue. Three cooperating mechanisms, all configured through
//! [`GovernorConfig`] and all **off by default** (the unloaded path pays
//! nothing):
//!
//! 1. **Memory budget + suspension.** With `memory_budget_pages` set,
//!    every query runs its paged arena against a per-query scope of one
//!    global [`tdfs_core::MemoryBudget`] (heap-spill growth is charged
//!    as overdraft page-equivalents, so the pressure signal sees the
//!    true footprint). When global pressure crosses
//!    `suspend_high_water`, the governor snapshot-suspends the
//!    *heaviest* in-flight durable query — the crash-consistent
//!    checkpoint is taken first, then shard leases are revoked and the
//!    workers park — and resumes it when pressure falls below
//!    `resume_low_water`. Suspension costs no correctness: revoked
//!    shards never publish, so the resumed query completes to the exact
//!    count.
//! 2. **Cost-aware admission + queue aging.** With `cost_per_ms` set, a
//!    cheap plan-free estimate ([`estimate_cost`]) is scaled by current
//!    load and compared against the request's deadline at submit time;
//!    an unmeetable deadline is rejected up front
//!    ([`crate::Rejected::DeadlineUnmeetable`]) instead of burning a
//!    worker on a doomed query. Independently, queued queries whose
//!    deadline has already expired are shed by the governor before they
//!    ever occupy a worker, and a CoDel-style sojourn rule
//!    ([`ShedPolicy::Sojourn`]) sheds the *newest low-priority* queued
//!    work under sustained overload.
//! 3. **Brownout.** A [`Breaker`] watches recent outcomes; when the
//!    failure/shed ratio spikes it opens, rejecting new non-critical
//!    work ([`crate::Rejected::BrownedOut`]) while in-flight and
//!    high-priority queries proceed, and half-opens after a cooldown to
//!    probe recovery. Mid-flight deadline hits and sheds on the durable
//!    path return partial results with an **exact** lower bound from
//!    the ack ledger (see [`crate::PartialResult`]), never a guess.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use tdfs_graph::GraphView;

/// Scheduling priority of a query. Under overload the governor sheds
/// `Low` work first and an open circuit breaker admits only `High`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Best-effort: first to be shed, rejected during brownout.
    Low,
    /// Default: kept under queue pressure, rejected during brownout.
    #[default]
    Normal,
    /// Critical: admitted even while the breaker is open.
    High,
}

/// Queue-shedding policy under sustained overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Only deadline-expired queued queries are shed (always on).
    #[default]
    None,
    /// CoDel-style: once the *oldest* queued query has waited longer
    /// than `target` continuously for at least `target`, shed the
    /// newest `Low`-priority queued query each governor tick until
    /// sojourn recovers. Shedding newest-first preserves the work the
    /// service has already waited on (oldest entries are closest to
    /// running).
    Sojourn {
        /// Acceptable queue sojourn.
        target: Duration,
    },
}

/// Circuit-breaker thresholds (brownout control).
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Master switch; `false` (default) disables state tracking.
    pub enabled: bool,
    /// Sliding outcome-window length.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Bad-outcome (failure/shed/deadline) fraction that opens it.
    pub trip_ratio: f64,
    /// Time spent open before half-opening to probe recovery.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            window: 32,
            min_samples: 8,
            trip_ratio: 0.5,
            cooldown: Duration::from_millis(100),
        }
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Normal admission.
    #[default]
    Closed,
    /// Brownout: only [`Priority::High`] submissions are admitted.
    Open,
    /// Probing: admission is normal; the next bad outcome re-opens,
    /// the next good one closes.
    HalfOpen,
}

/// Sliding-window circuit breaker (see [`BreakerConfig`]). Pure state
/// machine: the service feeds it outcomes and ticks, and reads the
/// state at admission.
#[derive(Debug)]
pub(crate) struct Breaker {
    cfg: BreakerConfig,
    window: VecDeque<bool>,
    state: BreakerState,
    opened_at: Option<Instant>,
}

impl Breaker {
    pub(crate) fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            window: VecDeque::new(),
            state: BreakerState::Closed,
            opened_at: None,
        }
    }

    pub(crate) fn state(&self) -> BreakerState {
        self.state
    }

    /// Feeds one finished-query outcome. Returns `true` on a state
    /// change.
    pub(crate) fn record(&mut self, bad: bool, now: Instant) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        match self.state {
            BreakerState::Closed => {
                self.window.push_back(bad);
                while self.window.len() > self.cfg.window.max(1) {
                    self.window.pop_front();
                }
                let bads = self.window.iter().filter(|&&b| b).count();
                if self.window.len() >= self.cfg.min_samples.max(1)
                    && bads as f64 >= self.cfg.trip_ratio * self.window.len() as f64
                {
                    self.open(now);
                    return true;
                }
                false
            }
            BreakerState::HalfOpen => {
                if bad {
                    self.open(now);
                } else {
                    self.state = BreakerState::Closed;
                    self.window.clear();
                    self.opened_at = None;
                }
                true
            }
            // Outcomes finishing while open are in-flight stragglers;
            // they don't inform recovery (no new work was admitted).
            BreakerState::Open => false,
        }
    }

    /// Cooldown check. Returns `true` when Open half-opens.
    pub(crate) fn tick(&mut self, now: Instant) -> bool {
        if self.state == BreakerState::Open
            && self
                .opened_at
                .is_some_and(|t| now.duration_since(t) >= self.cfg.cooldown)
        {
            self.state = BreakerState::HalfOpen;
            return true;
        }
        false
    }

    fn open(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.window.clear();
        self.opened_at = Some(now);
    }
}

/// Overload-governor knobs (see module docs). The default configuration
/// disables every mechanism: no budget, no cost gating, no sojourn
/// shedding, breaker off.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Global page budget shared by all concurrently executing queries
    /// (8 KB pages, the arena granularity). `None` = unlimited; queries
    /// run exactly as without a governor.
    pub memory_budget_pages: Option<usize>,
    /// Budget pressure (`in_use / capacity`, >1 under spill overdraft)
    /// at or above which the heaviest in-flight durable query is
    /// snapshot-suspended.
    pub suspend_high_water: f64,
    /// Pressure at or below which suspended queries resume (one per
    /// tick). Must be below the high water or suspension flaps.
    pub resume_low_water: f64,
    /// Queue-shedding policy under sustained overload.
    pub shed_policy: ShedPolicy,
    /// Cost-model speed for deadline-aware admission, in
    /// [`estimate_cost`] units per millisecond. `None` disables the
    /// gate.
    pub cost_per_ms: Option<u64>,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Governor scan cadence (deadline sheds, pressure checks, breaker
    /// cooldown).
    pub tick: Duration,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            memory_budget_pages: None,
            suspend_high_water: 0.9,
            resume_low_water: 0.7,
            shed_policy: ShedPolicy::None,
            cost_per_ms: None,
            breaker: BreakerConfig::default(),
            tick: Duration::from_millis(2),
        }
    }
}

impl GovernorConfig {
    /// Whether any mechanism needs the background governor thread.
    pub(crate) fn needs_thread(&self) -> bool {
        self.memory_budget_pages.is_some()
            || self.shed_policy != ShedPolicy::None
            || self.breaker.enabled
            || self.deadline_sheds()
    }

    /// Queue scanning for expired deadlines is tied to any active
    /// mechanism (a fully-default governor leaves the legacy behaviour:
    /// workers check at dequeue).
    fn deadline_sheds(&self) -> bool {
        self.memory_budget_pages.is_some()
            || self.shed_policy != ShedPolicy::None
            || self.breaker.enabled
    }
}

/// Cheap plan-free cost estimate of a `k`-vertex pattern query against
/// `graph`: the admitted initial-task space (`arcs`) times the expected
/// per-level candidate fanout (`avg_degree / num_labels`, at least 1)
/// compounded over the remaining `k − 2` levels, times `k` for
/// per-vertex work. Saturating; the absolute scale is meaningless — it
/// only has to *order* queries and track a per-host
/// [`GovernorConfig::cost_per_ms`] calibration.
pub fn estimate_cost<V: GraphView + ?Sized>(graph: &V, k: usize) -> u64 {
    let arcs = graph.num_arcs() as u64;
    if arcs == 0 || k < 2 {
        return k as u64;
    }
    let avg_degree = arcs / graph.num_vertices().max(1) as u64;
    let fanout = (avg_degree / graph.num_labels().max(1) as u64).max(1);
    let mut cost = arcs;
    for _ in 0..k.saturating_sub(2) {
        cost = cost.saturating_mul(fanout);
    }
    cost.saturating_mul(k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfs_graph::GraphBuilder;

    fn breaker(enabled: bool) -> Breaker {
        Breaker::new(BreakerConfig {
            enabled,
            window: 8,
            min_samples: 4,
            trip_ratio: 0.5,
            cooldown: Duration::from_millis(10),
        })
    }

    #[test]
    fn breaker_trips_on_bad_ratio_and_recovers() {
        let mut b = breaker(true);
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(!b.record(true, t0), "below min_samples");
        }
        assert!(b.record(true, t0), "4th bad outcome trips");
        assert_eq!(b.state(), BreakerState::Open);
        // Outcomes while open are ignored; cooldown half-opens.
        assert!(!b.record(false, t0));
        assert!(!b.tick(t0 + Duration::from_millis(5)));
        assert!(b.tick(t0 + Duration::from_millis(20)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A good probe closes; a bad one would re-open.
        assert!(b.record(false, t0 + Duration::from_millis(21)));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_reopens_on_bad_probe() {
        let mut b = breaker(true);
        let t0 = Instant::now();
        for _ in 0..4 {
            b.record(true, t0);
        }
        b.tick(t0 + Duration::from_millis(20));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.record(true, t0 + Duration::from_millis(21)));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = breaker(false);
        let t0 = Instant::now();
        for _ in 0..100 {
            assert!(!b.record(true, t0));
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn mixed_outcomes_below_ratio_stay_closed() {
        let mut b = breaker(true);
        let t0 = Instant::now();
        for i in 0..50 {
            assert!(!b.record(i % 4 == 0, t0), "1/4 bad stays closed");
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cost_estimate_orders_by_size_and_depth() {
        let mut small = GraphBuilder::new();
        for v in 1..10u32 {
            small.push_edge(0, v);
        }
        let small = small.build();
        let mut big = GraphBuilder::new();
        for u in 0..40u32 {
            for v in (u + 1)..40 {
                big.push_edge(u, v);
            }
        }
        let big = big.build();
        assert!(estimate_cost(&big, 3) > estimate_cost(&small, 3));
        assert!(estimate_cost(&big, 5) > estimate_cost(&big, 3));
        // Labels shrink candidate sets, and with them the estimate.
        let labeled = big.clone().with_labels((0..40).map(|v| v % 8).collect());
        assert!(estimate_cost(&labeled, 4) < estimate_cost(&big, 4));
        // Degenerate inputs don't panic.
        let empty = GraphBuilder::new().num_vertices(0).build();
        assert_eq!(estimate_cost(&empty, 3), 3);
    }

    #[test]
    fn default_governor_is_inert() {
        let g = GovernorConfig::default();
        assert!(!g.needs_thread());
        assert!(g.resume_low_water < g.suspend_high_water);
    }
}
