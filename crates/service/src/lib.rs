//! # tdfs-service
//!
//! A concurrent, multi-tenant query-serving layer over the T-DFS
//! subgraph-matching engine ([`tdfs_core`]).
//!
//! The engine crates answer *one* question ("how many embeddings of this
//! pattern exist in this graph, fast?"); this crate answers the
//! deployment question around it: many clients, many graphs, recurring
//! patterns, bounded resources. It provides:
//!
//! - a [`GraphCatalog`] of named, shared, immutable data graphs
//!   ([`catalog`]);
//! - an LRU [`PlanCache`] keyed by (graph, *canonical* pattern, plan
//!   options), so isomorphic patterns presented with different vertex
//!   numberings share one compiled plan slot ([`cache`], [`canon`]);
//! - a worker pool behind a **bounded** admission queue with explicit
//!   [`Rejected::QueueFull`] backpressure — submission never blocks
//!   ([`service`]);
//! - per-query deadlines (measured from submission, so queueing counts)
//!   and cooperative cancellation via [`tdfs_core::CancelFlag`], threaded
//!   through every engine's periodic poll sites;
//! - a blocking/polling [`QueryHandle`], streamed matches through
//!   [`tdfs_core::MatchSink`], and a [`ServiceMetrics`] snapshot
//!   aggregating engine [`tdfs_core::RunStats`] across queries.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use tdfs_graph::GraphBuilder;
//! use tdfs_query::Pattern;
//! use tdfs_service::{QueryRequest, Service, ServiceConfig};
//!
//! let svc = Service::new(ServiceConfig::default());
//! let mut b = GraphBuilder::new();
//! for u in 0..5u32 {
//!     for v in (u + 1)..5 {
//!         b.push_edge(u, v);
//!     }
//! }
//! svc.register_graph("k5", Arc::new(b.build()));
//!
//! // C(5,3) = 10 triangles in K5.
//! let handle = svc.submit(QueryRequest::new("k5", Pattern::clique(3))).unwrap();
//! assert_eq!(handle.wait().result.unwrap().matches, 10);
//! ```

/// `chaos_point!("name")` runs the named fault point's scripted action
/// (stall, panic) when the `chaos` feature is on; compiles to nothing
/// without it.
#[cfg(feature = "chaos")]
macro_rules! chaos_point {
    ($name:literal) => {
        let _ = ::tdfs_testkit::fault::fire($name);
    };
}
#[cfg(not(feature = "chaos"))]
macro_rules! chaos_point {
    ($name:literal) => {};
}

pub(crate) use chaos_point;

/// `chaos_inject!("name")` is `true` when the named fault point should
/// take its failure path; compile-time `false` without the `chaos`
/// feature. Used where the fault is a forced *condition* (e.g. the
/// governor seeing phantom memory pressure) rather than a stall/panic.
#[cfg(feature = "chaos")]
macro_rules! chaos_inject {
    ($name:literal) => {
        ::tdfs_testkit::fault::fire($name) == ::tdfs_testkit::fault::Outcome::Inject
    };
}
#[cfg(not(feature = "chaos"))]
macro_rules! chaos_inject {
    ($name:literal) => {
        false
    };
}

pub(crate) use chaos_inject;

pub mod cache;
pub mod canon;
pub mod catalog;
pub mod disk;
pub mod durable;
pub mod fsck;
pub mod governor;
pub mod service;
pub mod snapshot;
pub mod standing;

pub use cache::{PlanCache, PlanCacheKey, PlanCacheStats};
pub use canon::PatternKey;
pub use catalog::GraphCatalog;
pub use disk::{DiskCatalog, Intent, PersistedDelta, Recovery, StorageError};
pub use durable::{shard_cuts, DurableConfig, QueryProgress, Shard};
pub use fsck::{fsck, fsck_with, Finding, FindingKind, FsckReport, Severity};
pub use governor::{
    estimate_cost, BreakerConfig, BreakerState, GovernorConfig, Priority, ShedPolicy,
};
pub use service::{
    ApplyError, ApplyReport, PartialResult, QueryHandle, QueryOutcome, QueryRequest, Rejected,
    ResumeError, RetryPolicy, Service, ServiceConfig, ServiceMetrics, SnapshotError,
};
pub use snapshot::{DecodeError, QuerySnapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use standing::{MatchDelta, StandingRequest};
