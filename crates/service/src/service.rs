//! The query service: admission, scheduling, execution, metrics.
//!
//! A [`Service`] owns a [`GraphCatalog`], a [`PlanCache`] and a pool of
//! worker threads fed by a **bounded** admission queue. Submission is
//! `try`-semantics throughout: a full queue returns
//! [`Rejected::QueueFull`] immediately — the service never blocks a
//! client to create backpressure, it *reports* it and lets the client
//! decide (retry, shed, or reroute).
//!
//! Every admitted query gets a fresh [`CancelFlag`] threaded into the
//! engine's [`MatcherConfig`], so [`QueryHandle::cancel`] stops the run
//! cooperatively at the engines' periodic poll sites; the query then
//! completes `Ok` with a partial count and `stats.cancelled` set.
//! Deadlines are measured **from submission**, so time spent waiting in
//! the queue counts against the budget; a query whose deadline expires
//! while queued completes with [`EngineError::TimeLimit`] without ever
//! touching the engine.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tdfs_core::budgeted_map_options;
use tdfs_core::engine::edge_admitted;
use tdfs_core::retry::{retry, BackoffPolicy, Retry};
use tdfs_core::{
    host_filter_edges, match_plan_on_edges, match_plan_with_sink, CancelFlag, CollectSink,
    EngineError, MatchSink, MatcherConfig, MemoryBudget, RunResult, RunStats,
};
use tdfs_gpu::lease::LeaseStats;
use tdfs_graph::mapped::DEFAULT_CACHE_BYTES;
use tdfs_graph::{
    write_container, ContainerOptions, CsrGraph, DeltaCsr, EdgeBatch, GraphBase, GraphError,
    MapOptions, MmapGraph,
};
use tdfs_mem::PAGE_BYTES;
use tdfs_query::plan::QueryPlan;
use tdfs_query::Pattern;

use crate::cache::{PlanCache, PlanCacheStats};
use crate::catalog::GraphCatalog;
use crate::disk::{self, DiskCatalog, PersistedDelta, Recovery, StorageError};
use crate::durable::{self, DurableConfig, DurableJob, DurableState, QueryProgress};
use crate::governor::{estimate_cost, Breaker, BreakerState, GovernorConfig, Priority, ShedPolicy};
use crate::snapshot::{self, DecodeError, QuerySnapshot};
use crate::standing::{
    oriented_seeds, DedupSink, MatchDelta, NotifyFn, StandingQuery, StandingRequest,
};

/// Completed durable queries kept registered (snapshot-able and visible
/// to [`Service::progress`]) before their lease counters are folded into
/// the service-lifetime base and the state is dropped.
const DURABLE_RETAIN: usize = 256;

/// Service sizing knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing queries (each runs one query at a time;
    /// the engine's own warp parallelism is inside the query).
    pub workers: usize,
    /// Admission-queue capacity in queries; a submit beyond it is
    /// rejected with [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// Plan-cache capacity in plans.
    pub plan_cache_capacity: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Maximum poisoned-worker restarts over the service's lifetime. A
    /// worker that panics mid-query fails that query with
    /// [`EngineError::WorkerPanicked`], retires, and is replaced by a
    /// fresh thread while restarts remain; past the limit the panicking
    /// thread keeps serving (the pool never shrinks) but the panic is
    /// still counted.
    pub worker_restart_limit: usize,
    /// Durable-execution defaults (leases, watchdog, sharding). Durable
    /// runs recover worker panics and stalls per shard — the restart
    /// limit above is the backstop for panics *outside* shard execution.
    pub durability: DurableConfig,
    /// Overload-governor knobs: global memory budget with
    /// snapshot-suspension, cost-aware admission, queue shedding, and
    /// the brownout circuit breaker. Every mechanism is off by default
    /// (see [`GovernorConfig`]).
    pub governor: GovernorConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: tdfs_core::config::default_warps().min(8),
            queue_capacity: 64,
            plan_cache_capacity: 64,
            default_deadline: None,
            worker_restart_limit: 8,
            durability: DurableConfig::default(),
            governor: GovernorConfig::default(),
        }
    }
}

/// Bounded retry-with-backoff for [`Service::submit_with_retry`]:
/// transient [`Rejected::QueueFull`] backpressure is retried after an
/// exponentially growing sleep; every other rejection is final.
///
/// Kept as the service's public knob shape; execution delegates to the
/// shared [`tdfs_core::retry`] utility (jittered truncated exponential
/// backoff), the same machinery behind standing-query notify delivery,
/// maintenance dispatch, and the cluster transport's RPCs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = plain `submit`).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles each retry.
    pub initial_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The admission queue is at capacity — backpressure; retry later.
    QueueFull,
    /// No graph with this name is registered in the catalog.
    UnknownGraph(String),
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// Cost-aware admission (see [`GovernorConfig::cost_per_ms`])
    /// estimated the query cannot finish inside its deadline under the
    /// current load — running it would only burn a worker on a doomed
    /// query. Raise the deadline or retry off-peak.
    DeadlineUnmeetable {
        /// The [`estimate_cost`] value the gate computed.
        estimated_cost: u64,
    },
    /// The circuit breaker is open (brownout): recent outcomes show a
    /// failure/shed spike, and only [`Priority::High`] work is admitted
    /// until a recovery probe succeeds.
    BrownedOut,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull => write!(f, "admission queue full"),
            Rejected::UnknownGraph(name) => write!(f, "unknown graph {name:?}"),
            Rejected::ShuttingDown => write!(f, "service is shutting down"),
            Rejected::DeadlineUnmeetable { estimated_cost } => write!(
                f,
                "deadline unmeetable under current load (estimated cost {estimated_cost})"
            ),
            Rejected::BrownedOut => write!(f, "service is browned out (circuit breaker open)"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Why [`Service::snapshot`] could not produce a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// No durable query with this id is registered (unknown id,
    /// non-durable query, or evicted from the completed-query retention
    /// window).
    UnknownQuery(u64),
    /// The query is admitted but still waiting in the queue; it has no
    /// execution state yet. Retry once it starts (or cancel it — an
    /// unstarted query has nothing worth checkpointing).
    NotStarted(u64),
    /// [`Service::suspend_to_disk`] could not persist the checkpoint
    /// (no state directory, or the write failed). The query *is*
    /// suspended in memory; retry the persist or use
    /// [`Service::unsuspend`].
    Storage(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnknownQuery(id) => write!(f, "no durable query with id {id}"),
            SnapshotError::NotStarted(id) => write!(f, "query {id} has not started executing"),
            SnapshotError::Storage(e) => write!(f, "checkpoint not persisted: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Why [`Service::resume`] rejected a snapshot.
#[derive(Debug)]
pub enum ResumeError {
    /// The byte buffer is not a valid snapshot (bad magic, unknown
    /// version, truncation, or corrupt payload).
    Decode(DecodeError),
    /// The snapshot references a graph not in this service's catalog.
    UnknownGraph(String),
    /// The catalog's graph disagrees with the snapshot: its admitted
    /// initial-edge list has a different length, so the snapshot's shard
    /// ranges do not describe this graph.
    GraphMismatch {
        /// Admitted-edge count recorded in the snapshot.
        expected: u64,
        /// Admitted-edge count of the registered graph under the
        /// snapshot's plan.
        actual: u64,
    },
    /// The catalog's graph is at a different [`tdfs_graph::GraphVersion`]
    /// than the one the snapshot was taken against. The snapshot's shard
    /// ranges index that exact version's admitted-edge space, and a
    /// batch may reorder or resize it even when the total edge count
    /// happens to agree — resuming would silently skip or double-count
    /// edges. Re-run the query instead (or restore the graph to the
    /// snapshot's version first).
    GraphVersionMismatch {
        /// Graph version recorded in the snapshot.
        expected: u64,
        /// Current version of the registered graph.
        actual: u64,
    },
    /// Admission failed (queue full / shutting down).
    Rejected(Rejected),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Decode(e) => write!(f, "invalid snapshot: {e}"),
            ResumeError::UnknownGraph(name) => write!(f, "snapshot graph {name:?} not registered"),
            ResumeError::GraphMismatch { expected, actual } => write!(
                f,
                "graph mismatch: snapshot has {expected} admitted edges, catalog graph has {actual}"
            ),
            ResumeError::GraphVersionMismatch { expected, actual } => write!(
                f,
                "graph version mismatch: snapshot taken at version {expected}, catalog graph is at {actual}"
            ),
            ResumeError::Rejected(r) => write!(f, "resume not admitted: {r}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<DecodeError> for ResumeError {
    fn from(e: DecodeError) -> Self {
        ResumeError::Decode(e)
    }
}

/// Why [`Service::apply`] (or [`Service::compact_graph`]) failed.
#[derive(Debug)]
pub enum ApplyError {
    /// No graph with this name is registered in the catalog.
    UnknownGraph(String),
    /// The batch references vertices outside the graph
    /// ([`tdfs_graph::GraphError`]); nothing was changed.
    Graph(GraphError),
    /// The catalog entry was replaced or unregistered while the batch
    /// was being prepared (e.g. a concurrent `register_graph` under the
    /// same name); nothing was changed. Re-fetch and retry if the new
    /// entry is still the intended target.
    Conflict(String),
    /// The in-memory commit succeeded but persisting to the state
    /// directory failed: the catalog serves the new version, the disk
    /// still holds the previous one. A later successful
    /// [`Service::apply`]/[`Service::compact_graph`] (the sidecar is
    /// cumulative) or a retry heals it; a restart before then reopens
    /// at the last persisted version.
    Storage(StorageError),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::UnknownGraph(name) => write!(f, "unknown graph {name:?}"),
            ApplyError::Graph(e) => write!(f, "invalid batch: {e}"),
            ApplyError::Conflict(name) => {
                write!(
                    f,
                    "graph {name:?} was concurrently replaced; batch not applied"
                )
            }
            ApplyError::Storage(e) => {
                write!(f, "committed in memory but not persisted: {e}")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

impl From<GraphError> for ApplyError {
    fn from(e: GraphError) -> Self {
        ApplyError::Graph(e)
    }
}

impl From<StorageError> for ApplyError {
    fn from(e: StorageError) -> Self {
        ApplyError::Storage(e)
    }
}

/// What [`Service::apply`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyReport {
    /// Catalog name of the mutated graph.
    pub graph: String,
    /// The version the graph reached.
    pub version: u64,
    /// Effectively inserted edges (absent before, present after).
    pub inserted: usize,
    /// Effectively deleted edges (present before, absent after).
    pub deleted: usize,
    /// Standing-query deltas delivered for this batch.
    pub notifications: usize,
}

/// One query to run.
///
/// Cloning is cheap (the sink is shared behind an `Arc`); it is what
/// lets [`Service::submit_with_retry`] resubmit the same request after
/// transient backpressure.
#[derive(Clone)]
pub struct QueryRequest {
    /// Catalog name of the data graph.
    pub graph: String,
    /// Query pattern.
    pub pattern: Pattern,
    /// Engine configuration (strategy, warps, stacks, plan options).
    pub config: MatcherConfig,
    /// Deadline measured from submission; `None` uses the service
    /// default.
    pub deadline: Option<Duration>,
    /// When set, collect up to this many concrete matches into the
    /// outcome (the run stops early once they are collected, as in
    /// [`tdfs_core::find_matches`]).
    pub collect_limit: Option<usize>,
    /// Optional streaming sink. Receives **pattern-vertex-indexed**
    /// assignments (`m[u]` = data vertex for pattern vertex `u`),
    /// concurrently from the engine's warps.
    pub sink: Option<Arc<dyn MatchSink + Send + Sync>>,
    /// Per-query override of [`ServiceConfig::durability`]`.enabled`;
    /// `None` uses the service default.
    pub durable: Option<bool>,
    /// Scheduling priority: under overload the governor sheds `Low`
    /// work first, and an open circuit breaker admits only `High`.
    pub priority: Priority,
    /// Restrict the search to matches rooted at these initial edges
    /// (`None` = the full graph). Counts over disjoint seed subsets are
    /// additive (see [`tdfs_core::match_plan_on_edges`]), which is what
    /// lets a cluster node run one coordinator-granted shard of a query
    /// as an ordinary service submission. Edges not admitted by the
    /// plan's filter are skipped.
    pub seed_edges: Option<Vec<(u32, u32)>>,
}

impl QueryRequest {
    /// A counting query against `graph` with the default T-DFS engine.
    pub fn new(graph: impl Into<String>, pattern: Pattern) -> Self {
        Self {
            graph: graph.into(),
            pattern,
            config: MatcherConfig::tdfs(),
            deadline: None,
            collect_limit: None,
            sink: None,
            durable: None,
            priority: Priority::Normal,
            seed_edges: None,
        }
    }

    /// Sets the engine configuration.
    pub fn with_config(mut self, config: MatcherConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets a per-query deadline (from submission).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Collects up to `limit` concrete matches into the outcome.
    pub fn with_collect_limit(mut self, limit: usize) -> Self {
        self.collect_limit = Some(limit);
        self
    }

    /// Streams matches to `sink` as they are found.
    pub fn with_sink(mut self, sink: Arc<dyn MatchSink + Send + Sync>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Overrides the service's durable-execution default for this query.
    /// `with_durable(false)` runs the legacy single-shot path: no
    /// leases, no snapshot/resume, and a worker panic fails the query
    /// with [`EngineError::WorkerPanicked`].
    pub fn with_durable(mut self, durable: bool) -> Self {
        self.durable = Some(durable);
        self
    }

    /// Sets the scheduling priority (default [`Priority::Normal`]).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Roots the search at exactly these initial edges (a shard of the
    /// admitted edge list) instead of the whole graph.
    pub fn with_seed_edges(mut self, edges: Vec<(u32, u32)>) -> Self {
        self.seed_edges = Some(edges);
        self
    }
}

/// Exact progress accounting attached to a durable query that ended
/// early (deadline hit or shed mid-run).
///
/// `lower_bound` is the sum of the counts published by **accepted**
/// shard acks — revoked and unfinished shards never publish, so the
/// true total is at least `lower_bound`, exactly. It is a verifiable
/// claim, not an extrapolation: re-running only the unfinished shards
/// (e.g. by resuming a [`Service::suspend`] checkpoint) and adding
/// their counts reproduces the full answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialResult {
    /// Matches published by accepted shard acks before the query ended.
    pub lower_bound: u64,
    /// Shards whose counts are included in `lower_bound`.
    pub shards_done: u64,
    /// Total shards of the query (done + unfinished).
    pub shards_total: u64,
}

/// Final state of a finished query.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Service-assigned query id (matches [`QueryHandle::id`]).
    pub query_id: u64,
    /// Engine result: `Ok` carries the count (partial iff
    /// `stats.cancelled`); a missed deadline — in queue or mid-run — is
    /// `Err(TimeLimit)`.
    pub result: Result<RunResult, EngineError>,
    /// Collected matches when the request set a `collect_limit`
    /// (pattern-vertex-indexed).
    pub matches: Option<Vec<Vec<u32>>>,
    /// Exact partial-progress accounting when a durable query ended
    /// early (`result` is `Err(TimeLimit)` or `Err(Shed)`): the counted
    /// lower bound and the shard completion ratio. `None` for complete
    /// queries, non-durable queries, and queries shed before starting.
    pub partial: Option<PartialResult>,
    /// Submission-to-completion wall time (queueing included).
    pub latency: Duration,
}

impl QueryOutcome {
    /// Whether the run stopped early on its cancel token (count is
    /// partial).
    pub fn cancelled(&self) -> bool {
        matches!(&self.result, Ok(r) if r.stats.cancelled)
    }
}

/// Client-side handle to an admitted query.
#[derive(Debug)]
pub struct QueryHandle {
    id: u64,
    cancel: CancelFlag,
    rx: mpsc::Receiver<QueryOutcome>,
}

impl QueryHandle {
    /// Service-assigned query id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cooperative cancellation; the query still completes (with
    /// a partial count) and must be waited on as usual.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the query finishes.
    ///
    /// Every admitted query is guaranteed an outcome (shutdown drains
    /// the queue), so this cannot block forever on a live service.
    pub fn wait(self) -> QueryOutcome {
        self.rx.recv().expect("worker dropped without an outcome")
    }

    /// Non-blocking poll; `Some` exactly once, when the query finished.
    pub fn try_wait(&mut self) -> Option<QueryOutcome> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the outcome.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<QueryOutcome> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// Point-in-time service counters.
#[derive(Debug, Default, Clone)]
pub struct ServiceMetrics {
    /// Queries admitted to the queue.
    pub admitted: u64,
    /// Submissions rejected with [`Rejected::QueueFull`].
    pub rejected_queue_full: u64,
    /// Submissions rejected with [`Rejected::UnknownGraph`].
    pub rejected_unknown_graph: u64,
    /// Submissions rejected with [`Rejected::ShuttingDown`].
    pub rejected_shutdown: u64,
    /// Submissions rejected with [`Rejected::DeadlineUnmeetable`].
    pub rejected_unmeetable: u64,
    /// Submissions rejected with [`Rejected::BrownedOut`].
    pub rejected_brownout: u64,
    /// Queries that finished `Ok` (including cancelled partials).
    pub completed: u64,
    /// Subset of `completed` that stopped on their cancel token.
    pub cancelled: u64,
    /// Queries that missed their deadline (in queue or mid-run).
    pub deadline_expired: u64,
    /// Queries that failed with a non-deadline engine error.
    pub failed: u64,
    /// Admitted queries shed by the overload governor before or during
    /// execution ([`EngineError::Shed`] outcomes).
    pub queries_shed: u64,
    /// Outcomes that carried a [`PartialResult`] (durable queries ended
    /// early with an exact counted lower bound).
    pub partials_served: u64,
    /// Snapshot-suspensions performed by the memory governor (plus
    /// manual [`Service::suspend`] calls).
    pub suspends: u64,
    /// Circuit-breaker transitions (closed → open → half-open → …).
    pub breaker_state_changes: u64,
    /// Circuit-breaker state at snapshot time.
    pub breaker_state: BreakerState,
    /// Pages of the service memory budget in use right now (0 when no
    /// budget is configured).
    pub budget_in_use_pages: usize,
    /// High-water mark of `budget_in_use_pages` over the service
    /// lifetime.
    pub budget_peak_pages: usize,
    /// Configured budget capacity (0 when no budget is configured).
    pub budget_capacity_pages: usize,
    /// Queries waiting in the admission queue right now.
    pub queue_depth: usize,
    /// Resubmissions performed by [`Service::submit_with_retry`] after a
    /// [`Rejected::QueueFull`] (each counted rejection that was retried).
    pub admission_retries: u64,
    /// Worker threads that panicked mid-query. The query fails with
    /// [`EngineError::WorkerPanicked`]; the service keeps running.
    pub worker_panics: u64,
    /// Replacement workers spawned for panicked ones (≤ `worker_panics`,
    /// bounded by [`ServiceConfig::worker_restart_limit`]).
    pub workers_restarted: u64,
    /// Queries executed on the durable (leased-shard) path.
    pub durable_queries: u64,
    /// Shard leases granted across all durable queries.
    pub leases_granted: u64,
    /// Leases reclaimed (expired stalls reaped + panicked shards
    /// failed).
    pub leases_reclaimed: u64,
    /// Zombie acks rejected by the epoch fence (each one a count that
    /// would otherwise have landed twice).
    pub leases_fenced: u64,
    /// Shard tasks whose counts were published (accepted acks).
    pub tasks_acked: u64,
    /// Checkpoints taken via [`Service::snapshot`].
    pub snapshots_taken: u64,
    /// Total encoded bytes across those checkpoints.
    pub snapshot_bytes: u64,
    /// Queries admitted via [`Service::resume`].
    pub resumes: u64,
    /// Edge batches committed via [`Service::apply`].
    pub batches_applied: u64,
    /// Standing-query deltas delivered (one per standing query per
    /// applied batch).
    pub standing_notifications: u64,
    /// Delta deliveries retried after a drop (fault point
    /// `service.notify.drop`); the version fence keeps the redeliveries
    /// exactly-once.
    pub notify_retries: u64,
    /// Maintenance passes dispatched by [`Service::apply`] (one per
    /// standing query × batch side × rooted plan).
    pub maintenance_jobs: u64,
    /// Maintenance passes that ran on the applying thread because queue
    /// dispatch was rejected or the queued job failed/was shed.
    pub maintenance_inline_fallbacks: u64,
    /// Shard leases granted to the worker whose cache already held the
    /// shard's candidate page (cache-conscious task ordering).
    pub lease_affinity_hits: u64,
    /// Intersections executed on the AVX2 vector lane path, process
    /// lifetime (from `tdfs_gpu::simd::dispatch_counts`).
    pub simd_intersections: u64,
    /// Intersections executed on the scalar lane path, process lifetime.
    pub scalar_intersections: u64,
    /// Engine counters merged across all completed queries.
    pub engine: RunStats,
    /// Sum of completion latencies (queueing + execution).
    pub total_latency: Duration,
    /// Largest single completion latency.
    pub max_latency: Duration,
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
}

impl ServiceMetrics {
    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let finished = self.completed + self.deadline_expired + self.failed + self.queries_shed;
        let mean_ms = if finished > 0 {
            self.total_latency.as_secs_f64() * 1e3 / finished as f64
        } else {
            0.0
        };
        format!(
            "admission: {} admitted, {} queue-full, {} unknown-graph, {} shutdown, \
             {} unmeetable, {} browned-out; depth {}\n\
             outcomes: {} completed ({} cancelled), {} deadline-expired, {} failed, {} shed\n\
             latency: {:.2} ms mean, {:.2} ms max\n\
             faults: {} admission retries, {} worker panics, {} workers restarted\n\
             governor: {} suspends, {} partials served, {} breaker changes ({:?}); \
             budget {}/{} pages (peak {})\n\
             durable: {} queries, {} resumes; leases {} granted / {} reclaimed / {} fenced; \
             {} shards acked; {} snapshots ({} bytes)\n\
             dynamic: {} batches applied, {} standing notifications ({} retried), \
             {} maintenance jobs ({} inline fallbacks)\n\
             engine kernels: {} merge, {} bsearch, {} gallop\n\
             engine traffic: {:.3} MB touched; dispatch {} simd / {} scalar; \
             {} affinity lease hits\n\
             plan cache: {} hits, {} misses, {} evictions, {} presentation rebuilds",
            self.admitted,
            self.rejected_queue_full,
            self.rejected_unknown_graph,
            self.rejected_shutdown,
            self.rejected_unmeetable,
            self.rejected_brownout,
            self.queue_depth,
            self.completed,
            self.cancelled,
            self.deadline_expired,
            self.failed,
            self.queries_shed,
            mean_ms,
            self.max_latency.as_secs_f64() * 1e3,
            self.admission_retries,
            self.worker_panics,
            self.workers_restarted,
            self.suspends,
            self.partials_served,
            self.breaker_state_changes,
            self.breaker_state,
            self.budget_in_use_pages,
            self.budget_capacity_pages,
            self.budget_peak_pages,
            self.durable_queries,
            self.resumes,
            self.leases_granted,
            self.leases_reclaimed,
            self.leases_fenced,
            self.tasks_acked,
            self.snapshots_taken,
            self.snapshot_bytes,
            self.batches_applied,
            self.standing_notifications,
            self.notify_retries,
            self.maintenance_jobs,
            self.maintenance_inline_fallbacks,
            self.engine.warp.merge_kernels,
            self.engine.warp.bsearch_kernels,
            self.engine.warp.gallop_kernels,
            self.engine.warp.bytes_touched as f64 / (1 << 20) as f64,
            self.simd_intersections,
            self.scalar_intersections,
            self.lease_affinity_hits,
            self.plan_cache.hits,
            self.plan_cache.misses,
            self.plan_cache.evictions,
            self.plan_cache.presentation_rebuilds,
        )
    }
}

struct Job {
    id: u64,
    graph_name: String,
    /// The exact graph *view* this job enumerates. Client queries get
    /// the catalog entry at submission; maintenance jobs may carry a
    /// not-yet-published successor view (insert-side counting runs
    /// before `Service::apply` commits).
    graph: Arc<DeltaCsr>,
    pattern: Pattern,
    config: MatcherConfig,
    deadline: Option<Duration>,
    collect_limit: Option<usize>,
    sink: Option<Arc<dyn MatchSink + Send + Sync>>,
    cancel: CancelFlag,
    durable: bool,
    priority: Priority,
    /// Pre-compiled plan override. Maintenance jobs carry their rooted
    /// (anchor-pinned, symmetry-free) plans, which must bypass the
    /// cache — a rooted plan is not what `get_or_build` would compile
    /// for the pattern.
    plan: Option<Arc<QueryPlan>>,
    /// When set, the run enumerates only from these directed seed edges
    /// (filtered by plan admission) instead of the graph's full
    /// admitted-edge list — the delta-edge-anchored maintenance sweep.
    seed_edges: Option<Vec<(u32, u32)>>,
    /// Per-query scope of the service memory budget (when configured):
    /// attached to the engine config at execution so arena pages are
    /// charged against the global budget, and readable by the governor
    /// to rank in-flight queries by footprint.
    scope: Option<MemoryBudget>,
    /// Set when this job continues a checkpointed query.
    resume: Option<QuerySnapshot>,
    submitted: Instant,
    tx: mpsc::Sender<QueryOutcome>,
}

/// Queue state guarded by one mutex so admission and shutdown cannot
/// interleave into a stranded job (a push after the workers decided the
/// queue was drained).
struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

#[derive(Default)]
struct MetricCounters {
    admitted: u64,
    rejected_queue_full: u64,
    rejected_unknown_graph: u64,
    rejected_shutdown: u64,
    rejected_unmeetable: u64,
    rejected_brownout: u64,
    completed: u64,
    cancelled: u64,
    deadline_expired: u64,
    failed: u64,
    queries_shed: u64,
    partials_served: u64,
    suspends: u64,
    breaker_state_changes: u64,
    admission_retries: u64,
    worker_panics: u64,
    workers_restarted: u64,
    durable_queries: u64,
    snapshots_taken: u64,
    snapshot_bytes: u64,
    resumes: u64,
    batches_applied: u64,
    standing_notifications: u64,
    notify_retries: u64,
    maintenance_jobs: u64,
    maintenance_inline_fallbacks: u64,
    engine: RunStats,
    total_latency: Duration,
    max_latency: Duration,
}

/// Live and recently-completed durable query states. Lease counters of
/// evicted states fold into `base` so service-lifetime metrics survive
/// the bounded retention window.
#[derive(Default)]
struct DurableRegistry {
    states: HashMap<u64, Arc<DurableState>>,
    finished: VecDeque<u64>,
    base: LeaseStats,
}

/// Worker handles plus the respawn gate, under one lock so a poisoned
/// worker's replacement can never race past [`Service::shutdown`]'s
/// drain: either the respawn sees `closed` and declines, or the pushed
/// handle is visible to the next drain pass.
struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
    closed: bool,
    restarts: usize,
}

struct Inner {
    catalog: GraphCatalog,
    cache: PlanCache,
    queue: Mutex<QueueState>,
    available: Condvar,
    metrics: Mutex<MetricCounters>,
    next_id: Mutex<u64>,
    queue_capacity: usize,
    default_deadline: Option<Duration>,
    workers: Mutex<WorkerPool>,
    restart_limit: usize,
    next_worker: AtomicUsize,
    durable_cfg: DurableConfig,
    durable: Mutex<DurableRegistry>,
    num_workers: usize,
    governor_cfg: GovernorConfig,
    /// The service-wide page budget (set iff
    /// `governor_cfg.memory_budget_pages` is). Queries charge it through
    /// per-query [`MemoryBudget::scoped`] children.
    budget: Option<MemoryBudget>,
    breaker: Mutex<Breaker>,
    governor_stop: AtomicBool,
    governor: Mutex<Option<JoinHandle<()>>>,
    /// Registered standing queries by id.
    standing: Mutex<HashMap<u64, Arc<StandingQuery>>>,
    next_standing: Mutex<u64>,
    /// Serializes [`Service::apply`]/[`Service::compact_graph`] commits:
    /// version succession per service is linear, so standing deltas
    /// compose (`count` telescopes across batches) and the catalog swap
    /// can only lose to an external `register_graph` race, never to
    /// another apply.
    apply_lock: Mutex<()>,
    /// On-disk state directory (present iff the service was started
    /// with [`Service::open`]). Graph/sidecar writes are serialized by
    /// `apply_lock`; snapshot writes are per-file atomic.
    disk: Option<DiskState>,
}

/// The persistence half of [`Inner`]: the state directory plus the set
/// of catalog names that live in it (graphs registered with
/// [`Service::register_graph_persistent`] or reloaded by
/// [`Service::open`] — plain [`Service::register_graph`] entries stay
/// memory-only even on a disk-backed service).
struct DiskState {
    catalog: DiskCatalog,
    names: Mutex<Vec<String>>,
}

impl DiskState {
    fn is_persistent(&self, name: &str) -> bool {
        self.names
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .any(|n| n == name)
    }
}

/// Apply lock that survives a `graph.apply.midbatch` panic: the aborted
/// apply changed nothing observable, so the next apply proceeds from
/// clean state.
fn lock_apply(inner: &Inner) -> std::sync::MutexGuard<'_, ()> {
    inner
        .apply_lock
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Standing-registry lock, panic-tolerant for the same reason as
/// [`lock_metrics`].
fn lock_standing(inner: &Inner) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<StandingQuery>>> {
    inner
        .standing
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Durable-registry lock that survives worker panics (same reasoning as
/// [`lock_metrics`]: no cross-field invariant spans a lock acquisition).
fn lock_durable(inner: &Inner) -> std::sync::MutexGuard<'_, DurableRegistry> {
    inner
        .durable
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Metrics lock that survives worker panics: the counters are
/// independent `u64`s with no cross-field invariant, so a lock poisoned
/// mid-update is still safe to read and bump.
fn lock_metrics(inner: &Inner) -> std::sync::MutexGuard<'_, MetricCounters> {
    inner
        .metrics
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Breaker lock, panic-tolerant for the same reason.
fn lock_breaker(inner: &Inner) -> std::sync::MutexGuard<'_, Breaker> {
    inner
        .breaker
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Fan-out sink used per job: feeds the bounded collector (raw
/// position-indexed, remapped later in bulk) and the client's streaming
/// sink (remapped per match to pattern-vertex indexing).
struct ServiceSink<'a> {
    collect: Option<&'a CollectSink>,
    client: Option<&'a dyn MatchSink>,
    order: &'a [usize],
}

impl MatchSink for ServiceSink<'_> {
    fn emit(&self, m: &[u32]) {
        if let Some(c) = self.collect {
            c.emit(m);
        }
        if let Some(s) = self.client {
            let mut by_vertex = vec![0u32; m.len()];
            for (i, &v) in m.iter().enumerate() {
                by_vertex[self.order[i]] = v;
            }
            s.emit(&by_vertex);
        }
    }
}

/// The multi-tenant query service.
///
/// `Service` is `Sync`: share it behind an `Arc` and submit from any
/// number of client threads. Dropping it shuts down gracefully (drains
/// the queue, joins the workers).
pub struct Service {
    inner: Arc<Inner>,
}

/// What [`Service::open`] restored from a state directory.
pub struct OpenedService {
    /// The running service, with every persisted graph re-registered at
    /// its last persisted version (mmap-backed, decode cache charged
    /// against the memory budget when one is configured).
    pub service: Service,
    /// Handles for suspended queries that were re-admitted; each runs to
    /// the exact count the uninterrupted original would have produced.
    /// Their snapshot files were consumed (deleted) on admission.
    pub resumed: Vec<QueryHandle>,
    /// Snapshots that could not be resumed (graph gone, version moved,
    /// queue full, torn file), keyed by persisted query id. Their files
    /// are kept on disk for inspection or a later [`Service::resume`].
    pub failed: Vec<(u64, ResumeError)>,
    /// What the intent-journal recovery found at open: `Clean` when the
    /// previous process finished its last catalog transition, otherwise
    /// the interrupted intent and whether it was rolled forward (past
    /// its commit point) or rolled back.
    pub recovery: Recovery,
}

impl Service {
    /// Starts a service with `config.workers` worker threads (plus the
    /// background governor thread when any [`GovernorConfig`] mechanism
    /// is enabled).
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_disk(config, None)
    }

    fn with_disk(config: ServiceConfig, disk: Option<DiskState>) -> Self {
        let workers = config.workers.max(1);
        let budget = config.governor.memory_budget_pages.map(MemoryBudget::new);
        let breaker = Breaker::new(config.governor.breaker.clone());
        let inner = Arc::new(Inner {
            catalog: GraphCatalog::new(),
            cache: PlanCache::new(config.plan_cache_capacity),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            available: Condvar::new(),
            metrics: Mutex::new(MetricCounters::default()),
            next_id: Mutex::new(0),
            queue_capacity: config.queue_capacity.max(1),
            default_deadline: config.default_deadline,
            workers: Mutex::new(WorkerPool {
                handles: Vec::new(),
                closed: false,
                restarts: 0,
            }),
            restart_limit: config.worker_restart_limit,
            next_worker: AtomicUsize::new(workers),
            durable_cfg: config.durability,
            durable: Mutex::new(DurableRegistry::default()),
            num_workers: workers,
            governor_cfg: config.governor,
            budget,
            breaker: Mutex::new(breaker),
            governor_stop: AtomicBool::new(false),
            governor: Mutex::new(None),
            standing: Mutex::new(HashMap::new()),
            next_standing: Mutex::new(0),
            apply_lock: Mutex::new(()),
            disk,
        });
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("tdfs-service-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn service worker")
            })
            .collect();
        inner
            .workers
            .lock()
            .expect("workers poisoned")
            .handles
            .extend(handles);
        if inner.governor_cfg.needs_thread() {
            let arc = inner.clone();
            let handle = std::thread::Builder::new()
                .name("tdfs-governor".into())
                .spawn(move || governor_loop(&arc))
                .expect("spawn governor");
            *inner.governor.lock().expect("governor poisoned") = Some(handle);
        }
        Self { inner }
    }

    /// Opens (or creates) a service state directory and restores its
    /// contents: every graph in the on-disk catalog is re-registered
    /// from its `TDFSGRPH` container — mmap-resident, adjacency decoded
    /// on demand into a budget-charged cache, never fully materialized —
    /// with its persisted delta overlay rebuilt on top so the view is at
    /// the exact [`tdfs_graph::GraphVersion`] it had before the restart.
    /// Every persisted suspended-query snapshot is then re-admitted
    /// through [`Service::resume`].
    ///
    /// The directory is the one [`Service::register_graph_persistent`],
    /// [`Service::apply`] (sidecar updates), [`Service::compact_graph`]
    /// (container rewrites) and [`Service::suspend_to_disk`] write into.
    pub fn open(
        dir: impl Into<std::path::PathBuf>,
        config: ServiceConfig,
    ) -> Result<OpenedService, StorageError> {
        Self::open_with_vfs(dir, config, tdfs_graph::vfs::RealFs::arc())
    }

    /// [`Service::open`] in salvage mode: runs `tdfsck` repair on the
    /// state directory first — quarantining whatever fails validation,
    /// rebuilding the manifest from the containers that verify — then
    /// opens normally and returns the repair report alongside the
    /// service. The "get me back up and tell me what was lost" entry
    /// point for directories a strict [`Service::open`] refuses.
    pub fn open_salvage(
        dir: impl Into<std::path::PathBuf>,
        config: ServiceConfig,
    ) -> Result<(OpenedService, crate::fsck::FsckReport), StorageError> {
        Self::open_salvage_with_vfs(dir, config, tdfs_graph::vfs::RealFs::arc())
    }

    /// [`Service::open_salvage`] with an injected filesystem seam.
    pub fn open_salvage_with_vfs(
        dir: impl Into<std::path::PathBuf>,
        config: ServiceConfig,
        vfs: Arc<dyn tdfs_graph::vfs::Vfs>,
    ) -> Result<(OpenedService, crate::fsck::FsckReport), StorageError> {
        let dir = dir.into();
        let report = crate::fsck::fsck_with(&dir, vfs.clone(), true)?;
        let opened = Self::open_with_vfs(dir, config, vfs)?;
        Ok((opened, report))
    }

    /// [`Service::open`] with an injected filesystem seam: every byte
    /// the service persists flows through `vfs`, so the crash-point
    /// harness can run the full workload under the testkit's
    /// simulated-power-loss filesystem.
    pub fn open_with_vfs(
        dir: impl Into<std::path::PathBuf>,
        config: ServiceConfig,
        vfs: Arc<dyn tdfs_graph::vfs::Vfs>,
    ) -> Result<OpenedService, StorageError> {
        let catalog = DiskCatalog::open_with(dir, vfs)?;
        let recovery = catalog.recovery().clone();
        let names = catalog.read_manifest()?;
        let service = Self::with_disk(
            config,
            Some(DiskState {
                catalog,
                names: Mutex::new(names.clone()),
            }),
        );
        let disk = service.inner.disk.as_ref().expect("just installed");
        for name in &names {
            let view = service.load_persistent(disk, name)?;
            service.inner.catalog.register(name.clone(), Arc::new(view));
        }
        let mut resumed = Vec::new();
        let mut failed = Vec::new();
        for (id, bytes) in disk.catalog.read_snapshots()? {
            match service.resume(&bytes) {
                Ok(handle) => {
                    disk.catalog.remove_snapshot(id)?;
                    resumed.push(handle);
                }
                Err(e) => failed.push((id, e)),
            }
        }
        Ok(OpenedService {
            service,
            resumed,
            failed,
            recovery,
        })
    }

    /// Map options for opening containers: decode-cache residency is
    /// charged against the service budget when one is configured, with
    /// the cache capacity never exceeding the budget itself.
    fn mapped_options(&self) -> MapOptions {
        match &self.inner.budget {
            Some(budget) => {
                let budget_bytes = self
                    .inner
                    .governor_cfg
                    .memory_budget_pages
                    .map_or(usize::MAX, |p| p.saturating_mul(PAGE_BYTES));
                budgeted_map_options(budget, DEFAULT_CACHE_BYTES.min(budget_bytes))
            }
            None => MapOptions::default(),
        }
    }

    /// Rehydrates one persisted graph: container mapped, sidecar overlay
    /// replayed on top (see [`DeltaCsr::with_overlay`]).
    fn load_persistent(&self, disk: &DiskState, name: &str) -> Result<DeltaCsr, StorageError> {
        let mapped = MmapGraph::open_with(disk.catalog.graph_path(name), &self.mapped_options())?;
        let base = GraphBase::Mapped(Arc::new(mapped));
        match disk.catalog.read_delta(name)? {
            None => Ok(DeltaCsr::from_graph_base(base)),
            Some(d) if d.inserts.is_empty() && d.deletes.is_empty() => {
                Ok(DeltaCsr::at_version(base, d.version))
            }
            Some(d) => DeltaCsr::with_overlay(base, d.version, &d.inserts, &d.deletes)
                .map_err(|e| StorageError::Overlay(format!("{name}: {e}"))),
        }
    }

    /// The graph catalog (register/unregister data graphs here).
    pub fn catalog(&self) -> &GraphCatalog {
        &self.inner.catalog
    }

    /// Registers an immutable `graph` under `name` as the version-0
    /// view of a batch-dynamic entry (convenience for
    /// `catalog().register_base`). Mutate it with [`Service::apply`].
    pub fn register_graph(&self, name: impl Into<String>, graph: Arc<CsrGraph>) {
        self.inner.catalog.register_base(name, graph);
    }

    /// Registers `graph` under `name` *and* persists it to the state
    /// directory: the graph is written as a `TDFSGRPH` container, then
    /// the catalog serves the **mapped** container — the heap copy is
    /// dropped, adjacency decodes on demand — so a graph far larger than
    /// the memory budget stays queryable. Subsequent [`Service::apply`]
    /// batches persist their cumulative overlay to the sidecar, and a
    /// later [`Service::open`] restores the graph at its final version.
    ///
    /// Requires a service started with [`Service::open`].
    pub fn register_graph_persistent(
        &self,
        name: impl Into<String>,
        graph: Arc<CsrGraph>,
    ) -> Result<(), StorageError> {
        let name = name.into();
        let Some(disk) = &self.inner.disk else {
            return Err(StorageError::Io(
                "service has no state directory (use Service::open)".into(),
            ));
        };
        disk::validate_name(&name)?;
        // Under the apply lock: the container, sidecar and manifest must
        // not interleave with a concurrent apply/compact on this name.
        let _guard = lock_apply(&self.inner);
        // One journaled transition: container + sidecar + manifest land
        // together or (after crash recovery) not at all.
        disk.catalog.install_graph(&name, 0, |mut w| {
            write_container(&*graph, &mut w, &ContainerOptions::default())
                .map(drop)
                .map_err(StorageError::from)
        })?;
        let path = disk.catalog.graph_path(&name);
        let mapped = MmapGraph::open_with(&path, &self.mapped_options())?;
        let view = DeltaCsr::from_mapped(Arc::new(mapped));
        {
            let mut names = disk
                .names
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if !names.contains(&name) {
                names.push(name.clone());
                names.sort_unstable();
            }
        }
        self.inner.catalog.register(name, Arc::new(view));
        Ok(())
    }

    /// Unregisters `name`, drops its cached plans and its standing
    /// queries. In-flight queries against the graph finish on their own
    /// `Arc`.
    pub fn unregister_graph(&self, name: &str) -> Option<Arc<DeltaCsr>> {
        let g = self.inner.catalog.unregister(name);
        if g.is_some() {
            self.inner.cache.invalidate_graph(name);
            lock_standing(&self.inner).retain(|_, sq| sq.graph != name);
        }
        g
    }

    /// Tries to admit `request`. Never blocks: a full queue, an unknown
    /// graph, or a shutting-down service reject immediately.
    pub fn submit(&self, request: QueryRequest) -> Result<QueryHandle, Rejected> {
        let Some(graph) = self.inner.catalog.get(&request.graph) else {
            lock_metrics(&self.inner).rejected_unknown_graph += 1;
            return Err(Rejected::UnknownGraph(request.graph));
        };
        // Brownout gate: an open breaker admits only High priority (the
        // half-open state admits everything — those are the recovery
        // probes).
        if self.inner.governor_cfg.breaker.enabled && request.priority < Priority::High {
            let open = {
                let mut b = lock_breaker(&self.inner);
                if b.tick(Instant::now()) {
                    // Cooldown elapsed right at this submit; count the
                    // transition and admit the probe.
                    drop(b);
                    lock_metrics(&self.inner).breaker_state_changes += 1;
                    false
                } else {
                    b.state() == BreakerState::Open
                }
            };
            if open {
                lock_metrics(&self.inner).rejected_brownout += 1;
                return Err(Rejected::BrownedOut);
            }
        }
        let deadline = request.deadline.or(self.inner.default_deadline);
        // Cost-aware admission: reject a deadline the load-scaled cost
        // estimate says cannot be met, instead of burning a worker on it.
        if let (Some(rate), Some(d)) = (self.inner.governor_cfg.cost_per_ms, deadline) {
            let cost = estimate_cost(&*graph, request.pattern.num_vertices());
            let depth = self.inner.queue.lock().expect("queue poisoned").jobs.len();
            let load = 1 + (depth / self.inner.num_workers) as u64;
            let est_ms = (cost / rate.max(1)).saturating_mul(load);
            if est_ms > d.as_millis() as u64 {
                lock_metrics(&self.inner).rejected_unmeetable += 1;
                return Err(Rejected::DeadlineUnmeetable {
                    estimated_cost: cost,
                });
            }
        }
        let cancel = request.config.cancel.clone().unwrap_or_default();
        let (tx, rx) = mpsc::channel();
        let id = {
            let mut next = self.inner.next_id.lock().expect("id poisoned");
            *next += 1;
            *next
        };
        let durable = request.durable.unwrap_or(self.inner.durable_cfg.enabled);
        let job = Job {
            id,
            graph_name: request.graph,
            graph,
            pattern: request.pattern,
            config: request.config,
            deadline,
            collect_limit: request.collect_limit,
            sink: request.sink,
            cancel: cancel.clone(),
            durable,
            priority: request.priority,
            plan: None,
            seed_edges: request.seed_edges,
            scope: self.inner.budget.as_ref().map(MemoryBudget::scoped),
            resume: None,
            submitted: Instant::now(),
            tx,
        };
        self.enqueue_job(job).map_err(|(_, r)| r)?;
        Ok(QueryHandle { id, cancel, rx })
    }

    /// Pushes an already-built job through admission control. A
    /// rejection hands the job back so internal callers (maintenance
    /// dispatch) can retry or fall back inline — returning the job by
    /// value is the point, so the large `Err` variant is deliberate.
    #[allow(clippy::result_large_err)]
    fn enqueue_job(&self, job: Job) -> Result<(), (Job, Rejected)> {
        {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            if q.shutting_down {
                drop(q);
                lock_metrics(&self.inner).rejected_shutdown += 1;
                return Err((job, Rejected::ShuttingDown));
            }
            if q.jobs.len() >= self.inner.queue_capacity {
                drop(q);
                lock_metrics(&self.inner).rejected_queue_full += 1;
                return Err((job, Rejected::QueueFull));
            }
            q.jobs.push_back(job);
        }
        self.inner.available.notify_one();
        lock_metrics(&self.inner).admitted += 1;
        Ok(())
    }

    /// Serializes a running (or recently completed) durable query into a
    /// versioned byte buffer that [`Service::resume`] — on this service
    /// or another process entirely — can continue from.
    ///
    /// The checkpoint is crash-consistent by construction: shards under
    /// a live lease are demoted back to unfinished tasks in the image
    /// (their counts have not been published, so re-executing them is
    /// exactly-once safe), and the live run is not disturbed. Resuming
    /// re-runs only unfinished shards and starts the count from the
    /// published partial sum.
    pub fn snapshot(&self, query_id: u64) -> Result<Vec<u8>, SnapshotError> {
        let state = lock_durable(&self.inner).states.get(&query_id).cloned();
        if let Some(state) = state {
            let bytes = state.to_snapshot();
            let mut m = lock_metrics(&self.inner);
            m.snapshots_taken += 1;
            m.snapshot_bytes += bytes.len() as u64;
            return Ok(bytes);
        }
        let queued = self
            .inner
            .queue
            .lock()
            .expect("queue poisoned")
            .jobs
            .iter()
            .any(|j| j.id == query_id);
        Err(if queued {
            SnapshotError::NotStarted(query_id)
        } else {
            SnapshotError::UnknownQuery(query_id)
        })
    }

    /// Snapshot-suspends a running durable query in place: takes a
    /// [`Service::snapshot`]-equivalent checkpoint, revokes the query's
    /// in-flight shard leases (their counts were never published, so
    /// exactness is preserved), and parks its shard workers so the
    /// query holds no arena pages. [`Service::unsuspend`] continues it
    /// from where it stopped; the returned checkpoint additionally
    /// works with [`Service::resume`] as a recovery artifact.
    ///
    /// This is the manual form of what the memory governor does
    /// automatically above [`GovernorConfig::suspend_high_water`].
    pub fn suspend(&self, query_id: u64) -> Result<Vec<u8>, SnapshotError> {
        let state = lock_durable(&self.inner).states.get(&query_id).cloned();
        let Some(state) = state else {
            let queued = self
                .inner
                .queue
                .lock()
                .expect("queue poisoned")
                .jobs
                .iter()
                .any(|j| j.id == query_id);
            return Err(if queued {
                SnapshotError::NotStarted(query_id)
            } else {
                SnapshotError::UnknownQuery(query_id)
            });
        };
        Ok(suspend_state(&self.inner, &state))
    }

    /// [`Service::suspend`] plus persistence: the checkpoint is written
    /// to the state directory under the query id, so a subsequent
    /// [`Service::open`] of the same directory re-admits the query and
    /// runs it to the exact count the uninterrupted original would have
    /// produced. The file is consumed on successful resume.
    pub fn suspend_to_disk(&self, query_id: u64) -> Result<Vec<u8>, SnapshotError> {
        let Some(disk) = &self.inner.disk else {
            return Err(SnapshotError::Storage(
                "service has no state directory (use Service::open)".into(),
            ));
        };
        let bytes = self.suspend(query_id)?;
        disk.catalog
            .write_snapshot(query_id, &bytes)
            .map_err(|e| SnapshotError::Storage(e.to_string()))?;
        Ok(bytes)
    }

    /// Clears a [`Service::suspend`]ed (or governor-suspended) query's
    /// suspension so its shard workers resume leasing. Returns whether
    /// the query existed and was suspended.
    pub fn unsuspend(&self, query_id: u64) -> bool {
        let state = lock_durable(&self.inner).states.get(&query_id).cloned();
        match state {
            Some(s) => {
                let was = s.suspended.swap(false, Ordering::AcqRel);
                if was {
                    s.ledger.poke();
                }
                was
            }
            None => false,
        }
    }

    /// Admits a query that continues from a [`Service::snapshot`] byte
    /// buffer: already-published shard counts are kept, unfinished
    /// shards re-execute, and the outcome's count equals what the
    /// uninterrupted query would have returned.
    ///
    /// The snapshot names its graph; the catalog's graph under that name
    /// must produce the same admitted-edge list length, or the shard
    /// ranges would index a different edge space
    /// ([`ResumeError::GraphMismatch`]). Streaming sinks and collect
    /// limits are not part of the checkpoint; the resumed query counts
    /// only.
    pub fn resume(&self, bytes: &[u8]) -> Result<QueryHandle, ResumeError> {
        let snap = snapshot::decode(bytes)?;
        let Some(graph) = self.inner.catalog.get(&snap.graph) else {
            return Err(ResumeError::UnknownGraph(snap.graph));
        };
        // Version gate first: the shard ranges index the admitted-edge
        // space of the exact graph version the snapshot was taken
        // against, and a later batch can reorder that space even when
        // the edge *count* below happens to agree.
        if graph.version() != snap.graph_version {
            return Err(ResumeError::GraphVersionMismatch {
                expected: snap.graph_version,
                actual: graph.version(),
            });
        }
        let plan = self.inner.cache.get_or_build(
            &snap.graph,
            graph.version(),
            &snap.pattern,
            snap.config.plan,
        );
        let actual = {
            let _scope = graph.pin_scope();
            host_filter_edges(&*graph, &plan).len() as u64
        };
        if actual != snap.edge_count {
            return Err(ResumeError::GraphMismatch {
                expected: snap.edge_count,
                actual,
            });
        }
        let cancel = CancelFlag::new();
        let (tx, rx) = mpsc::channel();
        let id = {
            let mut next = self.inner.next_id.lock().expect("id poisoned");
            *next += 1;
            *next
        };
        let job = Job {
            id,
            graph_name: snap.graph.clone(),
            graph,
            pattern: snap.pattern.clone(),
            config: snap.config.clone(),
            deadline: self.inner.default_deadline,
            collect_limit: None,
            sink: None,
            cancel: cancel.clone(),
            durable: true,
            priority: Priority::Normal,
            plan: None,
            seed_edges: None,
            scope: self.inner.budget.as_ref().map(MemoryBudget::scoped),
            resume: Some(snap),
            submitted: Instant::now(),
            tx,
        };
        self.enqueue_job(job)
            .map_err(|(_, r)| ResumeError::Rejected(r))?;
        lock_metrics(&self.inner).resumes += 1;
        Ok(QueryHandle { id, cancel, rx })
    }

    /// Registers a standing query: `callback` receives one exact
    /// [`MatchDelta`] per batch subsequently committed to the watched
    /// graph by [`Service::apply`]. Returns the subscription id for
    /// [`Service::unregister_standing`].
    ///
    /// Deltas are computed incrementally — only matches through changed
    /// edges are enumerated (see [`crate::standing`]) — and delivered
    /// synchronously from the applying thread, after commit, in version
    /// order, exactly once per version. The callback must not call back
    /// into [`Service::apply`] (it runs under the apply lock) and
    /// should return quickly; offload heavy reactions to a channel.
    pub fn register_standing<F>(
        &self,
        request: StandingRequest,
        callback: F,
    ) -> Result<u64, Rejected>
    where
        F: Fn(&MatchDelta) + Send + Sync + 'static,
    {
        let Some(graph) = self.inner.catalog.get(&request.graph) else {
            lock_metrics(&self.inner).rejected_unknown_graph += 1;
            return Err(Rejected::UnknownGraph(request.graph));
        };
        let sq = Arc::new(StandingQuery::build(
            request,
            Arc::new(callback) as Arc<NotifyFn>,
            graph.version(),
        ));
        let id = {
            let mut next = self
                .inner
                .next_standing
                .lock()
                .expect("standing id poisoned");
            *next += 1;
            *next
        };
        lock_standing(&self.inner).insert(id, sq);
        Ok(id)
    }

    /// Removes a standing query; returns whether it existed. An apply
    /// already in flight may still deliver one last delta.
    pub fn unregister_standing(&self, id: u64) -> bool {
        lock_standing(&self.inner).remove(&id).is_some()
    }

    /// Applies an edge batch to the named graph: builds the successor
    /// [`DeltaCsr`] view, computes every standing query's exact match
    /// delta (deletions against the pre-batch view, insertions against
    /// the not-yet-published successor), then atomically commits —
    /// catalog swap, stale plan-cache generation dropped, overlay
    /// memory re-charged — and notifies subscribers.
    ///
    /// The batch is all-or-nothing: a failure (or a crash at the
    /// `graph.apply.midbatch` fault point, which fires *after* the
    /// deltas are computed and *before* the commit) leaves the catalog,
    /// cache, budget and subscribers exactly as they were. In-flight
    /// queries keep enumerating the view they started on.
    pub fn apply(&self, name: &str, batch: &EdgeBatch) -> Result<ApplyReport, ApplyError> {
        let _guard = lock_apply(&self.inner);
        let Some(pre) = self.inner.catalog.get(name) else {
            return Err(ApplyError::UnknownGraph(name.to_owned()));
        };
        // Disk-resident base: pin the decode cache for the whole apply —
        // row merges, maintenance passes and overlay capture all hold
        // neighbor slices (`next` shares the same base, so one scope
        // covers both views).
        let _scope = pre.pin_scope();
        let (next, applied) = pre.apply(batch)?;
        let next = Arc::new(next);
        let version = next.version();
        // Incremental maintenance, pre-commit. The removed side counts
        // on the still-published pre view; the added side counts on the
        // successor no client can reach yet.
        let standing: Vec<Arc<StandingQuery>> = lock_standing(&self.inner)
            .values()
            .filter(|sq| sq.graph == name)
            .cloned()
            .collect();
        let mut deltas: Vec<(Arc<StandingQuery>, MatchDelta)> = Vec::with_capacity(standing.len());
        for sq in standing {
            let (removed, removed_embeddings) = self.maintain(&sq, &pre, &applied.deleted);
            let (added, added_embeddings) = self.maintain(&sq, &next, &applied.inserted);
            let delta = MatchDelta {
                graph: name.to_owned(),
                version,
                added,
                removed,
                added_embeddings,
                removed_embeddings,
            };
            deltas.push((sq, delta));
        }
        // Kill point between compute and commit: a panic here must be
        // invisible — nothing below has run, nothing above published.
        crate::chaos_point!("graph.apply.midbatch");
        if !self.inner.catalog.swap(name, &pre, next.clone()) {
            return Err(ApplyError::Conflict(name.to_owned()));
        }
        self.inner.cache.invalidate_graph_below(name, version);
        if let Some(b) = &self.inner.budget {
            // Overlay re-charge is unchecked: the rows already reside,
            // so growth must become *visible* pressure (the governor's
            // job), not a refusable allocation. Charge before release
            // so a concurrent pressure read never under-counts.
            b.charge_bytes_unchecked(next.overlay_bytes());
            b.release_bytes(pre.overlay_bytes());
        }
        lock_metrics(&self.inner).batches_applied += 1;
        // Delivery is at-least-once per attempt (`service.notify.drop`
        // models a lost notification; the loop redelivers) fenced to
        // exactly-once per version by `last_version`.
        let mut notifications = 0usize;
        for (sq, delta) in &deltas {
            if sq.last_version.load(Ordering::Acquire) >= version {
                continue;
            }
            let delivered: Result<(), ()> = retry(
                &BackoffPolicy::unbounded(Duration::ZERO, Duration::ZERO),
                |attempt| {
                    if attempt > 0 {
                        lock_metrics(&self.inner).notify_retries += 1;
                    }
                    if crate::chaos_inject!("service.notify.drop") {
                        Retry::Again(())
                    } else {
                        (sq.callback)(delta);
                        Retry::Done(())
                    }
                },
            );
            debug_assert!(delivered.is_ok(), "unbounded retry cannot exhaust");
            sq.last_version.store(version, Ordering::Release);
            notifications += 1;
        }
        lock_metrics(&self.inner).standing_notifications += notifications as u64;
        // Persist the cumulative overlay *after* the commit: the batch
        // is already live in memory either way, and the sidecar write is
        // atomic (tmp + rename), so a crash at any point leaves disk at
        // some prefix version — never a torn file. A write failure
        // surfaces as [`ApplyError::Storage`] with the commit intact.
        if let Some(disk) = self.inner.disk.as_ref().filter(|d| d.is_persistent(name)) {
            let (inserts, deletes) = next.overlay_edges();
            disk.catalog.write_delta(
                name,
                &PersistedDelta {
                    version,
                    inserts,
                    deletes,
                },
            )?;
        }
        Ok(ApplyReport {
            graph: name.to_owned(),
            version,
            inserted: applied.inserted.len(),
            deleted: applied.deleted.len(),
            notifications,
        })
    }

    /// Rebuilds the named graph's overlay into a fresh compact base
    /// (see [`DeltaCsr::compact`]) and swaps it in. The version does
    /// **not** change — compaction is representation-only — so cached
    /// plans stay valid and standing queries see no delta. Returns the
    /// (unchanged) version.
    pub fn compact_graph(&self, name: &str) -> Result<u64, ApplyError> {
        let _guard = lock_apply(&self.inner);
        let Some(pre) = self.inner.catalog.get(name) else {
            return Err(ApplyError::UnknownGraph(name.to_owned()));
        };
        if pre.is_compact() {
            return Ok(pre.version());
        }
        let next = match self.inner.disk.as_ref().filter(|d| d.is_persistent(name)) {
            Some(disk) => {
                // Persistent graph: stream the compacted container
                // straight off the live view — `write_container` walks
                // `GraphView` rows, so the merged base+overlay adjacency
                // goes to disk without ever materializing a heap CSR —
                // then serve the *new* container, mapped, with an empty
                // sidecar that still records the version. The journaled
                // install makes container-swap + sidecar-reset atomic: a
                // crash between them can never leave the new container
                // shadowed by the stale pre-compaction overlay.
                let _scope = pre.pin_scope();
                disk.catalog.install_graph(name, pre.version(), |mut w| {
                    write_container(&*pre, &mut w, &ContainerOptions::default())
                        .map(drop)
                        .map_err(StorageError::from)
                })?;
                let mapped =
                    MmapGraph::open_with(disk.catalog.graph_path(name), &self.mapped_options())
                        .map_err(StorageError::from)?;
                Arc::new(DeltaCsr::at_version(
                    GraphBase::Mapped(Arc::new(mapped)),
                    pre.version(),
                ))
            }
            None => Arc::new(pre.compact()),
        };
        if !self.inner.catalog.swap(name, &pre, next.clone()) {
            return Err(ApplyError::Conflict(name.to_owned()));
        }
        if let Some(b) = &self.inner.budget {
            debug_assert_eq!(next.overlay_bytes(), 0);
            b.release_bytes(pre.overlay_bytes());
        }
        Ok(next.version())
    }

    /// One side of a standing query's delta: the number (and optionally
    /// embeddings) of `sq.pattern` matches in `view` through at least
    /// one `changed` edge. Runs one anchored pass per rooted plan, all
    /// feeding one canonicalizing dedup sink.
    fn maintain(
        &self,
        sq: &Arc<StandingQuery>,
        view: &Arc<DeltaCsr>,
        changed: &[(u32, u32)],
    ) -> (u64, Option<Vec<Vec<u32>>>) {
        let sink = Arc::new(DedupSink::new(sq.aut.clone(), sq.report_embeddings));
        if changed.is_empty() {
            return sink.take();
        }
        let seeds = oriented_seeds(changed);
        for plan in &sq.plans {
            self.maintenance_pass(sq, view, plan, &seeds, &sink);
        }
        sink.take()
    }

    /// Runs one (rooted plan × seed list) maintenance pass: dispatched
    /// through the normal admission queue as a durable Low-priority job
    /// — so maintenance rides the lease/straggler/governor machinery
    /// and yields to client work — with a bounded-retry, then-inline
    /// fallback. The dedup sink is idempotent, so "queued attempt shed
    /// mid-run, then full inline re-run" still counts exactly.
    fn maintenance_pass(
        &self,
        sq: &Arc<StandingQuery>,
        view: &Arc<DeltaCsr>,
        plan: &Arc<QueryPlan>,
        seeds: &[(u32, u32)],
        sink: &Arc<DedupSink>,
    ) {
        const DISPATCH_RETRIES: usize = 3;
        lock_metrics(&self.inner).maintenance_jobs += 1;
        let (tx, rx) = mpsc::channel();
        let id = {
            let mut next = self.inner.next_id.lock().expect("id poisoned");
            *next += 1;
            *next
        };
        let mut job = Some(Job {
            id,
            graph_name: sq.graph.clone(),
            graph: view.clone(),
            pattern: sq.pattern.clone(),
            config: sq.config.clone(),
            deadline: None,
            collect_limit: None,
            sink: Some(sink.clone() as Arc<dyn MatchSink + Send + Sync>),
            cancel: CancelFlag::new(),
            durable: true,
            priority: Priority::Low,
            plan: Some(plan.clone()),
            seed_edges: Some(seeds.to_vec()),
            scope: self.inner.budget.as_ref().map(MemoryBudget::scoped),
            resume: None,
            submitted: Instant::now(),
            tx,
        });
        let dispatch_policy = BackoffPolicy::new(
            DISPATCH_RETRIES as u32,
            Duration::from_micros(200),
            Duration::from_millis(2),
        );
        let _ = retry(&dispatch_policy, |_| {
            match self.enqueue_job(job.take().expect("job present until admitted")) {
                Ok(()) => Retry::Done(()),
                Err((j, Rejected::QueueFull)) => {
                    job = Some(j);
                    Retry::Again(())
                }
                Err((j, _)) => {
                    // Shutdown (or any final rejection): run inline.
                    job = Some(j);
                    Retry::Fatal(())
                }
            }
        });
        let admitted = job.is_none();
        drop(job); // a never-admitted job still holds its result sender
        let completed = admitted && matches!(rx.recv(), Ok(out) if out.result.is_ok());
        if !completed {
            // Inline fallback on the applying thread. The queued
            // attempt (if any) may have emitted partially before being
            // shed; the idempotent sink absorbs the overlap.
            lock_metrics(&self.inner).maintenance_inline_fallbacks += 1;
            let admitted_seeds: Vec<(u32, u32)> = seeds
                .iter()
                .copied()
                .filter(|&(u, v)| edge_admitted(&**view, plan, u, v))
                .collect();
            let remap = ServiceSink {
                collect: None,
                client: Some(sink.as_ref() as &dyn MatchSink),
                order: &plan.order.order,
            };
            let _ = match_plan_on_edges(&**view, plan, &sq.config, admitted_seeds, Some(&remap));
        }
    }

    /// Live progress of a durable query (pending/outstanding/acked
    /// shards, published counts, lease counters, wedge diagnostics);
    /// `None` for unknown ids, non-durable queries, and queries evicted
    /// from the completed-query retention window.
    pub fn progress(&self, query_id: u64) -> Option<QueryProgress> {
        lock_durable(&self.inner)
            .states
            .get(&query_id)
            .map(|s| s.progress())
    }

    /// [`Service::submit`] with bounded retry on transient
    /// [`Rejected::QueueFull`] backpressure: sleeps `policy`'s
    /// exponentially growing backoff between attempts and gives up —
    /// returning the final `QueueFull` — after `policy.max_retries`
    /// resubmissions. Non-transient rejections (unknown graph, shutdown)
    /// are returned immediately, never retried. Each resubmission bumps
    /// [`ServiceMetrics::admission_retries`].
    ///
    /// This blocks the caller for up to the summed backoff, which is the
    /// point: it converts the service's report-don't-block backpressure
    /// into a bounded wait at the edge, where blocking is the client's
    /// explicit choice.
    pub fn submit_with_retry(
        &self,
        request: QueryRequest,
        policy: &RetryPolicy,
    ) -> Result<QueryHandle, Rejected> {
        let backoff = BackoffPolicy::new(
            policy.max_retries,
            policy.initial_backoff.min(policy.max_backoff),
            policy.max_backoff,
        );
        retry(&backoff, |attempt| {
            if attempt > 0 {
                lock_metrics(&self.inner).admission_retries += 1;
            }
            match self.submit(request.clone()) {
                Ok(handle) => Retry::Done(handle),
                Err(Rejected::QueueFull) => Retry::Again(Rejected::QueueFull),
                Err(other) => Retry::Fatal(other),
            }
        })
    }

    /// Snapshot of the service counters.
    ///
    /// All outcome and governor counters (`completed`, `failed`,
    /// `queries_shed`, `partials_served`, `suspends`, …) live under one
    /// mutex and are read in a single acquisition, so the snapshot is
    /// internally consistent: invariants like *every finished query is
    /// counted exactly once across completed / deadline-expired /
    /// failed / shed* hold in every snapshot, even taken mid-storm.
    /// Queue depth, lease counters, breaker state and budget gauges are
    /// instantaneous reads of live structures.
    pub fn metrics(&self) -> ServiceMetrics {
        let depth = self.inner.queue.lock().expect("queue poisoned").jobs.len();
        let leases = {
            let reg = lock_durable(&self.inner);
            let mut agg = reg.base;
            for s in reg.states.values() {
                agg.merge(&s.lease_stats());
            }
            agg
        };
        let breaker_state = lock_breaker(&self.inner).state();
        let dispatch = tdfs_gpu::simd::dispatch_counts();
        let (in_use, peak, capacity) = self.inner.budget.as_ref().map_or((0, 0, 0), |b| {
            (b.in_use_pages(), b.peak_pages(), b.capacity_pages())
        });
        let m = lock_metrics(&self.inner);
        ServiceMetrics {
            admitted: m.admitted,
            rejected_queue_full: m.rejected_queue_full,
            rejected_unknown_graph: m.rejected_unknown_graph,
            rejected_shutdown: m.rejected_shutdown,
            rejected_unmeetable: m.rejected_unmeetable,
            rejected_brownout: m.rejected_brownout,
            completed: m.completed,
            cancelled: m.cancelled,
            deadline_expired: m.deadline_expired,
            failed: m.failed,
            queries_shed: m.queries_shed,
            partials_served: m.partials_served,
            suspends: m.suspends,
            breaker_state_changes: m.breaker_state_changes,
            breaker_state,
            budget_in_use_pages: in_use,
            budget_peak_pages: peak,
            budget_capacity_pages: capacity,
            queue_depth: depth,
            admission_retries: m.admission_retries,
            worker_panics: m.worker_panics,
            workers_restarted: m.workers_restarted,
            durable_queries: m.durable_queries,
            leases_granted: leases.granted,
            leases_reclaimed: leases.reclaimed,
            leases_fenced: leases.fenced,
            lease_affinity_hits: leases.affinity_hits,
            simd_intersections: dispatch.simd,
            scalar_intersections: dispatch.scalar,
            tasks_acked: leases.acked,
            snapshots_taken: m.snapshots_taken,
            snapshot_bytes: m.snapshot_bytes,
            resumes: m.resumes,
            batches_applied: m.batches_applied,
            standing_notifications: m.standing_notifications,
            notify_retries: m.notify_retries,
            maintenance_jobs: m.maintenance_jobs,
            maintenance_inline_fallbacks: m.maintenance_inline_fallbacks,
            engine: m.engine.clone(),
            total_latency: m.total_latency,
            max_latency: m.max_latency,
            plan_cache: self.inner.cache.stats(),
        }
    }

    /// Stops admitting work, drains the queue, and joins the workers.
    /// Queued queries still run (cancel them first for a fast stop).
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().expect("queue poisoned");
            q.shutting_down = true;
        }
        self.inner.available.notify_all();
        // Stop the governor first, then wake every suspended query: a
        // suspended query's shard workers would otherwise park forever
        // and the drain below would never join its service worker.
        self.inner.governor_stop.store(true, Ordering::Release);
        let governor = self
            .inner
            .governor
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(h) = governor {
            let _ = h.join();
        }
        for s in lock_durable(&self.inner).states.values() {
            if s.suspended.swap(false, Ordering::AcqRel) {
                s.ledger.poke();
            }
        }
        // Drain-and-join until the pool is empty: closing the pool first
        // stops further respawns, and any replacement pushed before the
        // close is picked up by a later pass.
        loop {
            let handles: Vec<_> = {
                let mut pool = self
                    .inner
                    .workers
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                pool.closed = true;
                pool.handles.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for w in handles {
                let _ = w.join();
            }
            self.inner.available.notify_all();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("queue poisoned");
            loop {
                if let Some(j) = q.jobs.pop_front() {
                    break Some(j);
                }
                if q.shutting_down {
                    break None;
                }
                q = inner.available.wait(q).expect("queue poisoned");
            }
        };
        match job {
            Some(job) => {
                let panicked =
                    std::panic::catch_unwind(AssertUnwindSafe(|| run_job(inner, &job))).is_err();
                if panicked {
                    // The query dies with the panic, not the service: fail
                    // it explicitly so the client's `wait` returns, then
                    // retire this (possibly poisoned) thread and hand the
                    // pool slot to a fresh one.
                    lock_metrics(inner).worker_panics += 1;
                    finish(inner, &job, Err(EngineError::WorkerPanicked), None, None);
                    if respawn_replacement(inner) {
                        return;
                    }
                    // Past the restart limit, or shutting down: keep
                    // serving on this thread — the pool never shrinks.
                }
            }
            None => return,
        }
    }
}

/// Spawns a replacement worker for a panicked one, unless the pool is
/// closed (shutdown) or the lifetime restart budget is spent. Returns
/// whether the caller should retire.
fn respawn_replacement(inner: &Arc<Inner>) -> bool {
    let mut pool = inner
        .workers
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if pool.closed || pool.restarts >= inner.restart_limit {
        return false;
    }
    pool.restarts += 1;
    let n = inner.next_worker.fetch_add(1, Ordering::Relaxed);
    let arc = inner.clone();
    let handle = std::thread::Builder::new()
        .name(format!("tdfs-service-{n}"))
        .spawn(move || worker_loop(&arc))
        .expect("spawn replacement worker");
    pool.handles.push(handle);
    drop(pool);
    lock_metrics(inner).workers_restarted += 1;
    true
}

/// Suspends one durable query: checkpoint first (crash consistency),
/// then revoke its in-flight shard leases so their pages come back and
/// its workers park on the suspension flag. Returns the checkpoint.
fn suspend_state(inner: &Inner, state: &Arc<DurableState>) -> Vec<u8> {
    state.suspended.store(true, Ordering::Release);
    let bytes = state.to_snapshot();
    state.revoke_all();
    let mut m = lock_metrics(inner);
    m.suspends += 1;
    m.snapshots_taken += 1;
    m.snapshot_bytes += bytes.len() as u64;
    bytes
}

/// Mutable state the governor keeps across ticks.
struct GovernorLocal {
    /// When the oldest queued query's sojourn first exceeded the CoDel
    /// target without recovering since; `None` while under target.
    sojourn_over_since: Option<Instant>,
}

fn governor_loop(inner: &Arc<Inner>) {
    let mut local = GovernorLocal {
        sojourn_over_since: None,
    };
    let tick = inner.governor_cfg.tick.max(Duration::from_micros(100));
    while !inner.governor_stop.load(Ordering::Acquire) {
        govern_once(inner, &mut local, Instant::now());
        std::thread::sleep(tick);
    }
}

/// One governor tick: shed expired queued queries, apply the sojourn
/// shed policy, act on memory pressure, advance the breaker cooldown.
fn govern_once(inner: &Arc<Inner>, local: &mut GovernorLocal, now: Instant) {
    // (a) Queue aging: a queued query whose deadline already expired can
    // only ever produce Err(TimeLimit) — fail it now instead of letting
    // it occupy a worker first. (Workers still check at dequeue, so
    // this is a latency optimization, not a correctness gate.)
    let expired: Vec<Job> = {
        let mut q = inner.queue.lock().expect("queue poisoned");
        let mut keep = VecDeque::with_capacity(q.jobs.len());
        let mut out = Vec::new();
        for j in q.jobs.drain(..) {
            let dead = j
                .deadline
                .is_some_and(|d| now.duration_since(j.submitted) > d);
            if dead {
                out.push(j);
            } else {
                keep.push_back(j);
            }
        }
        q.jobs = keep;
        out
    };
    for job in &expired {
        finish(inner, job, Err(EngineError::TimeLimit), None, None);
    }

    // (b) CoDel-style sojourn shedding: once the oldest queued query has
    // waited past the target *continuously for at least the target*,
    // shed the newest Low-priority queued query (one per tick). Newest-
    // first preserves the work the service has already waited on.
    if let ShedPolicy::Sojourn { target } = inner.governor_cfg.shed_policy {
        let victim: Option<Job> = {
            let mut q = inner.queue.lock().expect("queue poisoned");
            let oldest_over = q
                .jobs
                .front()
                .is_some_and(|j| now.duration_since(j.submitted) > target);
            if !oldest_over {
                local.sojourn_over_since = None;
                None
            } else {
                let since = *local.sojourn_over_since.get_or_insert(now);
                if now.duration_since(since) >= target {
                    q.jobs
                        .iter()
                        .rposition(|j| j.priority == Priority::Low)
                        .and_then(|i| q.jobs.remove(i))
                } else {
                    None
                }
            }
        };
        if let Some(job) = victim {
            finish(inner, &job, Err(EngineError::Shed), None, None);
        }
    }

    // (c) Memory pressure: above the high water, snapshot-suspend the
    // heaviest in-flight durable query; at or below the low water,
    // resume one suspended query per tick.
    if let Some(budget) = &inner.budget {
        let mut pressure = budget.pressure();
        // Fault point: the governor sees saturating pressure regardless
        // of real occupancy, driving the suspend path deterministically.
        if crate::chaos_inject!("service.governor.pressure") {
            pressure = 1.0;
        }
        let cfg = &inner.governor_cfg;
        if pressure >= cfg.suspend_high_water {
            let heaviest = {
                let reg = lock_durable(inner);
                reg.states
                    .values()
                    .filter(|s| {
                        !s.done.load(Ordering::Relaxed) && !s.suspended.load(Ordering::Relaxed)
                    })
                    .max_by_key(|s| s.scope.as_ref().map_or(0, MemoryBudget::in_use_pages))
                    .cloned()
            };
            // Suspending a query that holds no pages frees nothing;
            // only act on one with real footprint.
            if let Some(state) = heaviest {
                if state.scope.as_ref().map_or(0, MemoryBudget::in_use_pages) > 0 {
                    suspend_state(inner, &state);
                }
            }
        } else if pressure <= cfg.resume_low_water {
            let parked = {
                let reg = lock_durable(inner);
                reg.states
                    .values()
                    .find(|s| {
                        !s.done.load(Ordering::Relaxed) && s.suspended.load(Ordering::Relaxed)
                    })
                    .cloned()
            };
            if let Some(state) = parked {
                state.suspended.store(false, Ordering::Release);
                state.ledger.poke();
            }
        }
    }

    // (d) Breaker cooldown: an open breaker half-opens after cooldown
    // even if no submit arrives to observe it.
    if inner.governor_cfg.breaker.enabled {
        let changed = lock_breaker(inner).tick(now);
        if changed {
            lock_metrics(inner).breaker_state_changes += 1;
        }
    }
}

/// The plan a job runs: its pre-compiled override (maintenance jobs
/// carry rooted plans the cache must not serve) or the cache's plan for
/// (graph, version, pattern, options).
fn job_plan(inner: &Inner, job: &Job, cfg: &MatcherConfig) -> Arc<QueryPlan> {
    match &job.plan {
        Some(p) => p.clone(),
        None => {
            inner
                .cache
                .get_or_build(&job.graph_name, job.graph.version(), &job.pattern, cfg.plan)
        }
    }
}

/// A maintenance job's seed edges, filtered by the plan's first-two-
/// level admission predicate — the same gate `host_filter_edges`
/// applies to a full scan, so the engines only ever see admissible
/// initial tasks.
fn admitted_seeds(job: &Job, plan: &QueryPlan) -> Vec<(u32, u32)> {
    job.seed_edges
        .as_deref()
        .unwrap_or(&[])
        .iter()
        .copied()
        .filter(|&(u, v)| edge_admitted(&*job.graph, plan, u, v))
        .collect()
}

fn run_job(inner: &Inner, job: &Job) {
    // Disk-resident graph: pin the decode cache for the whole run — the
    // engines hold neighbor slices across deep DFS descents, and the
    // scope lets concurrent eviction reclaim *other* queries' segments
    // without invalidating this one's.
    let _scope = job.graph.pin_scope();
    if job.durable {
        run_durable_job(inner, job);
        return;
    }
    // On the legacy path the kill point covers the whole query (a
    // scripted panic here fails it with `WorkerPanicked`); the durable
    // path fires it per shard instead, where it is a recovered fault.
    crate::chaos_point!("service.worker.run");
    let mut cfg = job.config.clone().with_cancel(job.cancel.clone());
    if job.scope.is_some() {
        cfg.memory_budget = job.scope.clone();
    }
    if let Some(deadline) = job.deadline {
        match deadline.checked_sub(job.submitted.elapsed()) {
            Some(remaining) => {
                cfg.time_limit = Some(match cfg.time_limit {
                    Some(t) => t.min(remaining),
                    None => remaining,
                });
            }
            None => {
                // Expired while queued: same outcome as an in-run miss,
                // without paying for planning or execution.
                finish(inner, job, Err(EngineError::TimeLimit), None, None);
                return;
            }
        }
    }
    let plan = job_plan(inner, job, &cfg);
    let collector = job
        .collect_limit
        .map(|limit| CollectSink::with_cancel(limit, job.cancel.clone()));
    let sink = ServiceSink {
        collect: collector.as_ref(),
        client: job.sink.as_deref().map(|s| s as &dyn MatchSink),
        order: &plan.order.order,
    };
    let sink_opt: Option<&dyn MatchSink> = if sink.collect.is_some() || sink.client.is_some() {
        Some(&sink)
    } else {
        None
    };
    let result = match &job.seed_edges {
        Some(_) => {
            let seeds = admitted_seeds(job, &plan);
            match_plan_on_edges(&*job.graph, &plan, &cfg, seeds, sink_opt)
        }
        None => match_plan_with_sink(&*job.graph, &plan, &cfg, sink_opt),
    };
    let matches = collector.map(|c| {
        let k = plan.k();
        c.into_matches()
            .into_iter()
            .map(|by_pos| {
                let mut by_vertex = vec![0u32; k];
                for (i, &v) in by_pos.iter().enumerate() {
                    by_vertex[plan.order.order[i]] = v;
                }
                by_vertex
            })
            .collect()
    });
    finish(inner, job, result, matches, None);
}

/// Executes a query on the durable path: shard the admitted edge list
/// into a lease ledger, run shard workers under the per-query watchdog,
/// and publish counts through epoch-fenced acks. See [`crate::durable`].
fn run_durable_job(inner: &Inner, job: &Job) {
    let start = Instant::now();
    // Deadline accounting mirrors the legacy path: the engine time
    // limit and the from-submission deadline combine into one absolute
    // instant each shard derives its remaining budget from.
    let mut deadline_at = job.config.time_limit.map(|l| start + l);
    if let Some(d) = job.deadline {
        let abs = job.submitted + d;
        if Instant::now() > abs {
            finish(inner, job, Err(EngineError::TimeLimit), None, None);
            return;
        }
        deadline_at = Some(deadline_at.map_or(abs, |x| x.min(abs)));
    }
    let plan = job_plan(inner, job, &job.config);
    let edges = match &job.seed_edges {
        Some(_) => admitted_seeds(job, &plan),
        None => host_filter_edges(&*job.graph, &plan),
    };
    // The state's stored config is what a snapshot serializes: the
    // run-scoped cancel token, time limit and budget scope are not part
    // of the query's durable identity.
    let mut durable_config = job.config.clone();
    durable_config.cancel = None;
    durable_config.time_limit = None;
    durable_config.memory_budget = None;
    let state = match &job.resume {
        Some(snap) => durable::resumed_state(job.id, snap, &inner.durable_cfg, job.scope.clone()),
        None => durable::fresh_state(
            job.id,
            job.graph_name.clone(),
            job.graph.version(),
            job.pattern.clone(),
            durable_config,
            &*job.graph,
            &edges,
            &inner.durable_cfg,
            job.scope.clone(),
        ),
    };
    lock_durable(inner)
        .states
        .insert(job.id, Arc::clone(&state));
    lock_metrics(inner).durable_queries += 1;

    let collector = job
        .collect_limit
        .map(|limit| CollectSink::with_cancel(limit, job.cancel.clone()));
    // The execution config (unlike the stored one) carries the budget
    // scope, so every shard's arena pages charge the service budget.
    let mut exec_config = job.config.clone();
    if job.scope.is_some() {
        exec_config.memory_budget = job.scope.clone();
    }
    let djob = DurableJob {
        graph: &job.graph,
        plan: &plan,
        config: &exec_config,
        edges: &edges,
        cancel: &job.cancel,
        deadline: deadline_at,
        collector: collector.as_ref(),
        client: job.sink.as_deref().map(|s| s as &dyn MatchSink),
    };
    let result = durable::execute(&state, &djob, &inner.durable_cfg, start);
    let matches = collector.map(|c| {
        let k = plan.k();
        c.into_matches()
            .into_iter()
            .map(|by_pos| {
                let mut by_vertex = vec![0u32; k];
                for (i, &v) in by_pos.iter().enumerate() {
                    by_vertex[plan.order.order[i]] = v;
                }
                by_vertex
            })
            .collect()
    });

    state.done.store(true, Ordering::Relaxed);
    // A durable query that ran out of time (or was shed mid-run) still
    // has an exact counted lower bound: the sum published by accepted
    // acks, with the shard completion ratio alongside it. Computed after
    // `execute` returned, so the ledger is quiescent.
    let partial = match &result {
        Err(EngineError::TimeLimit) | Err(EngineError::Shed) => Some(PartialResult {
            lower_bound: state.matches.load(Ordering::Relaxed),
            shards_done: state.tasks_acked.load(Ordering::Relaxed),
            shards_total: state.tasks_acked.load(Ordering::Relaxed)
                + state.ledger.pending_len() as u64
                + state.ledger.outstanding_len() as u64,
        }),
        _ => None,
    };
    {
        // Retain the completed state (bounded) so post-completion
        // snapshots and progress probes still resolve; fold evicted
        // ledgers into the lifetime base counters.
        let mut reg = lock_durable(inner);
        reg.finished.push_back(job.id);
        while reg.finished.len() > DURABLE_RETAIN {
            let evicted = reg.finished.pop_front().expect("non-empty");
            if let Some(s) = reg.states.remove(&evicted) {
                let stats = s.lease_stats();
                reg.base.merge(&stats);
            }
        }
    }
    finish(inner, job, result, matches, partial);
}

fn finish(
    inner: &Inner,
    job: &Job,
    result: Result<RunResult, EngineError>,
    matches: Option<Vec<Vec<u32>>>,
    partial: Option<PartialResult>,
) {
    let latency = job.submitted.elapsed();
    {
        let mut m = lock_metrics(inner);
        match &result {
            Ok(r) => {
                m.completed += 1;
                if r.stats.cancelled {
                    m.cancelled += 1;
                }
                m.engine.merge(&r.stats);
            }
            Err(EngineError::TimeLimit) => m.deadline_expired += 1,
            Err(EngineError::Shed) => m.queries_shed += 1,
            Err(_) => m.failed += 1,
        }
        if partial.is_some() {
            m.partials_served += 1;
        }
        m.total_latency += latency;
        m.max_latency = m.max_latency.max(latency);
    }
    // Feed the breaker after the metrics lock is released (independent
    // locks, never held together). Client cancels are not "bad" — only
    // genuine failures, deadline misses and sheds count toward brownout.
    if inner.governor_cfg.breaker.enabled {
        let changed = lock_breaker(inner).record(result.is_err(), Instant::now());
        if changed {
            lock_metrics(inner).breaker_state_changes += 1;
        }
    }
    // The client may have dropped its handle; the outcome is then simply
    // discarded.
    let _ = job.tx.send(QueryOutcome {
        query_id: job.id,
        result,
        matches,
        partial,
        latency,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfs_core::reference_count;
    use tdfs_graph::generators::barabasi_albert;
    use tdfs_graph::GraphBuilder;
    use tdfs_query::plan::QueryPlan;
    use tdfs_query::PatternId;

    fn k5() -> Arc<CsrGraph> {
        let mut b = GraphBuilder::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                b.push_edge(u, v);
            }
        }
        Arc::new(b.build())
    }

    fn small_service() -> Service {
        Service::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            plan_cache_capacity: 8,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn counts_agree_with_the_reference() {
        let svc = small_service();
        let g = Arc::new(barabasi_albert(100, 3, 1));
        svc.register_graph("ba", g.clone());
        let p = PatternId(1).pattern();
        let want = reference_count(&*g, &QueryPlan::build_with(&p, Default::default()));
        let h = svc.submit(QueryRequest::new("ba", p)).unwrap();
        let out = h.wait();
        assert_eq!(out.result.unwrap().matches, want);
        assert!(out.matches.is_none(), "no collect_limit, no matches");
    }

    #[test]
    fn collect_limit_returns_pattern_indexed_matches() {
        let svc = small_service();
        svc.register_graph("k5", k5());
        let h = svc
            .submit(QueryRequest::new("k5", PatternId(2).pattern()).with_collect_limit(100))
            .unwrap();
        let out = h.wait();
        let matches = out.matches.unwrap();
        assert_eq!(out.result.unwrap().matches, 5);
        assert_eq!(matches.len(), 5);
        for m in &matches {
            assert_eq!(m.len(), 4);
        }
    }

    #[test]
    fn unknown_graph_is_rejected() {
        let svc = small_service();
        let err = svc
            .submit(QueryRequest::new("nope", Pattern::clique(3)))
            .unwrap_err();
        assert_eq!(err, Rejected::UnknownGraph("nope".into()));
        assert_eq!(svc.metrics().rejected_unknown_graph, 1);
    }

    /// A sink that signals when the engine first emits, then blocks until
    /// released — pins a worker deterministically.
    struct BlockingSink {
        entered: Arc<(Mutex<bool>, Condvar)>,
        release: Arc<(Mutex<bool>, Condvar)>,
    }

    impl MatchSink for BlockingSink {
        fn emit(&self, _m: &[u32]) {
            {
                let (m, c) = &*self.entered;
                *m.lock().unwrap() = true;
                c.notify_all();
            }
            let (m, c) = &*self.release;
            let mut g = m.lock().unwrap();
            while !*g {
                g = c.wait(g).unwrap();
            }
        }
    }

    fn wait_flag(pair: &(Mutex<bool>, Condvar)) {
        let (m, c) = pair;
        let mut g = m.lock().unwrap();
        while !*g {
            g = c.wait(g).unwrap();
        }
    }

    fn raise_flag(pair: &(Mutex<bool>, Condvar)) {
        let (m, c) = pair;
        *m.lock().unwrap() = true;
        c.notify_all();
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            plan_cache_capacity: 4,
            ..ServiceConfig::default()
        });
        svc.register_graph("k5", k5());
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let sink = Arc::new(BlockingSink {
            entered: entered.clone(),
            release: release.clone(),
        });
        let blocker = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)).with_sink(sink))
            .unwrap();
        // The single worker is now pinned inside emit.
        wait_flag(&entered);
        let queued = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)))
            .unwrap();
        let err = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)))
            .unwrap_err();
        assert_eq!(err, Rejected::QueueFull);
        raise_flag(&release);
        assert!(blocker.wait().result.is_ok());
        assert!(queued.wait().result.is_ok());
        let m = svc.metrics();
        assert_eq!(m.admitted, 2);
        assert_eq!(m.rejected_queue_full, 1);
        assert_eq!(m.completed, 2);
    }

    #[test]
    fn submit_with_retry_gives_up_after_bounded_attempts() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            plan_cache_capacity: 4,
            ..ServiceConfig::default()
        });
        svc.register_graph("k5", k5());
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let sink = Arc::new(BlockingSink {
            entered: entered.clone(),
            release: release.clone(),
        });
        let blocker = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)).with_sink(sink))
            .unwrap();
        wait_flag(&entered);
        let queued = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)))
            .unwrap();
        // The worker is pinned and the queue is full: every attempt of a
        // bounded retry fails, and each resubmission is counted.
        let policy = RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(1),
        };
        let err = svc
            .submit_with_retry(QueryRequest::new("k5", Pattern::clique(3)), &policy)
            .unwrap_err();
        assert_eq!(err, Rejected::QueueFull);
        assert_eq!(svc.metrics().admission_retries, 3);
        assert_eq!(
            svc.metrics().rejected_queue_full,
            4,
            "all 4 attempts rejected"
        );
        raise_flag(&release);
        assert!(blocker.wait().result.is_ok());
        assert!(queued.wait().result.is_ok());
    }

    #[test]
    fn submit_with_retry_recovers_from_transient_backpressure() {
        let svc = Arc::new(Service::new(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            plan_cache_capacity: 4,
            ..ServiceConfig::default()
        }));
        svc.register_graph("k5", k5());
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let sink = Arc::new(BlockingSink {
            entered: entered.clone(),
            release: release.clone(),
        });
        let blocker = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)).with_sink(sink))
            .unwrap();
        wait_flag(&entered);
        let queued = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)))
            .unwrap();
        // Retry from another thread against the full queue; once at least
        // one attempt has been rejected, unpin the worker so the queue
        // drains and a later attempt is admitted.
        let retrier = {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    max_retries: 10_000,
                    initial_backoff: Duration::from_micros(200),
                    max_backoff: Duration::from_millis(1),
                };
                svc.submit_with_retry(QueryRequest::new("k5", Pattern::clique(3)), &policy)
            })
        };
        while svc.metrics().admission_retries == 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        raise_flag(&release);
        let handle = retrier.join().unwrap().expect("retry should be admitted");
        assert!(blocker.wait().result.is_ok());
        assert!(queued.wait().result.is_ok());
        assert!(handle.wait().result.is_ok());
        let m = svc.metrics();
        assert!(m.admission_retries >= 1);
        assert_eq!(m.completed, 3);
    }

    #[test]
    fn submit_with_retry_does_not_retry_final_rejections() {
        let svc = small_service();
        let err = svc
            .submit_with_retry(
                QueryRequest::new("nope", Pattern::clique(3)),
                &RetryPolicy::default(),
            )
            .unwrap_err();
        assert_eq!(err, Rejected::UnknownGraph("nope".into()));
        assert_eq!(svc.metrics().admission_retries, 0);
    }

    /// A sink that panics on the first emit only — models a poisoned
    /// worker without risking a double panic (which would abort).
    struct PanicOnceSink {
        armed: std::sync::atomic::AtomicBool,
    }

    impl MatchSink for PanicOnceSink {
        fn emit(&self, _m: &[u32]) {
            if self.armed.swap(false, Ordering::SeqCst) {
                panic!("sink panic (injected by test)");
            }
        }
    }

    #[test]
    fn worker_panic_fails_query_and_restarts_worker() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            plan_cache_capacity: 4,
            ..ServiceConfig::default()
        });
        svc.register_graph("k5", k5());
        let sink = Arc::new(PanicOnceSink {
            armed: std::sync::atomic::AtomicBool::new(true),
        });
        // Legacy path opt-out: durable execution would recover this
        // panic per shard instead of failing the query.
        let h = svc
            .submit(
                QueryRequest::new("k5", Pattern::clique(3))
                    .with_sink(sink)
                    .with_durable(false),
            )
            .unwrap();
        let out = h.wait();
        assert!(matches!(out.result, Err(EngineError::WorkerPanicked)));
        // The sole worker was replaced: the next query still runs.
        let out = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)))
            .unwrap()
            .wait();
        assert_eq!(out.result.unwrap().matches, 10);
        let m = svc.metrics();
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.workers_restarted, 1);
        assert_eq!(m.failed, 1);
        assert_eq!(m.completed, 1);
        let s = m.summary();
        assert!(
            s.contains("1 worker panics"),
            "summary missing faults:\n{s}"
        );
        svc.shutdown();
    }

    #[test]
    fn exhausted_restart_budget_keeps_the_pool_serving() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            plan_cache_capacity: 4,
            worker_restart_limit: 0,
            ..ServiceConfig::default()
        });
        svc.register_graph("k5", k5());
        let sink = Arc::new(PanicOnceSink {
            armed: std::sync::atomic::AtomicBool::new(true),
        });
        let h = svc
            .submit(
                QueryRequest::new("k5", Pattern::clique(3))
                    .with_sink(sink)
                    .with_durable(false),
            )
            .unwrap();
        assert!(matches!(h.wait().result, Err(EngineError::WorkerPanicked)));
        // No restart budget: the panicking thread itself keeps serving.
        let out = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)))
            .unwrap()
            .wait();
        assert_eq!(out.result.unwrap().matches, 10);
        let m = svc.metrics();
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.workers_restarted, 0);
    }

    #[test]
    fn deadline_expired_in_queue_skips_execution() {
        let svc = small_service();
        svc.register_graph("k5", k5());
        let h = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)).with_deadline(Duration::ZERO))
            .unwrap();
        let out = h.wait();
        assert!(matches!(out.result, Err(EngineError::TimeLimit)));
        assert_eq!(svc.metrics().deadline_expired, 1);
    }

    #[test]
    fn repeated_patterns_hit_the_plan_cache() {
        let svc = small_service();
        svc.register_graph("k5", k5());
        for _ in 0..3 {
            svc.submit(QueryRequest::new("k5", PatternId(2).pattern()))
                .unwrap()
                .wait();
        }
        let s = svc.metrics().plan_cache;
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn cancelled_query_completes_partial() {
        let svc = small_service();
        svc.register_graph("ba", Arc::new(barabasi_albert(2000, 12, 21)));
        let h = svc
            .submit(
                QueryRequest::new("ba", PatternId(8).pattern())
                    .with_config(MatcherConfig::tdfs().with_warps(2)),
            )
            .unwrap();
        h.cancel();
        let out = h.wait();
        let r = out.result.unwrap();
        // Either the run was genuinely interrupted or it beat the cancel;
        // both are legal, but a cancelled run must say so.
        assert_eq!(r.stats.cancelled, svc.metrics().cancelled == 1);
    }

    #[test]
    fn shutdown_rejects_new_work_and_drains() {
        let svc = small_service();
        svc.register_graph("k5", k5());
        let h = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)))
            .unwrap();
        svc.shutdown();
        let err = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)))
            .unwrap_err();
        assert_eq!(err, Rejected::ShuttingDown);
        // The job admitted before shutdown still completed.
        assert!(h.wait().result.is_ok());
    }

    #[test]
    fn metrics_summary_mentions_counters() {
        let svc = small_service();
        svc.register_graph("k5", k5());
        svc.submit(QueryRequest::new("k5", Pattern::clique(3)))
            .unwrap()
            .wait();
        let s = svc.metrics().summary();
        for needle in ["admitted", "completed", "latency", "plan cache"] {
            assert!(s.contains(needle), "summary missing {needle:?}:\n{s}");
        }
    }
}
