//! The versioned query-snapshot wire format.
//!
//! [`Service::snapshot`](crate::Service::snapshot) serializes a durable
//! query's recoverable state — pattern, engine configuration, unfinished
//! edge-range shards (outstanding leases demoted back to tasks), the
//! acked-task set and the accumulated partial count — into a
//! self-contained byte buffer that
//! [`Service::resume`](crate::Service::resume) can reconstruct in the
//! same process or after a full restart.
//!
//! The workspace is deliberately dependency-free, so the codec is
//! hand-rolled: little-endian fixed-width integers, length-prefixed
//! lists, a magic header and an explicit version number. A decoder
//! **rejects** unknown versions and trailing garbage instead of
//! guessing — schema evolution must bump [`SNAPSHOT_VERSION`] and keep
//! a decode path for the old one. The exact bytes are pinned by a
//! golden test so accidental format changes are caught in review.
//!
//! What is *not* serialized, by design:
//! - the data graph (snapshots name it; the resuming service must have
//!   a graph registered under the same name — a mismatch is caught by
//!   comparing admitted-edge counts);
//! - deadlines, sinks and collect limits (properties of a *request*,
//!   not of the partial work; a resumed query gets fresh ones);
//! - cancellation tokens (a snapshot of a cancelled query resumes
//!   un-cancelled — that is the point of suspend/resume).

use std::fmt;
use std::time::Duration;

use tdfs_core::{ArrayCapacity, MatcherConfig, OverflowPolicy, StackConfig, Strategy};
use tdfs_query::Pattern;

use crate::durable::Shard;

/// Magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"TDFSSNAP";

/// Current wire-format version. Version 2 added `graph_version` (the
/// batch-dynamic catalog version the shards were carved against);
/// version-1 buffers still decode, with `graph_version = 0`.
pub const SNAPSHOT_VERSION: u16 = 2;

/// A decoded (or to-be-encoded) durable-query snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySnapshot {
    /// Catalog name of the data graph.
    pub graph: String,
    /// Catalog [`GraphVersion`](tdfs_graph::GraphVersion) the query was
    /// running against. Shard ranges index the admitted-edge space of
    /// *this* version; resuming against any other version is refused
    /// (`ResumeError::GraphVersionMismatch`) because the same range
    /// would cover different edges.
    pub graph_version: u64,
    /// The query pattern.
    pub pattern: Pattern,
    /// Engine configuration (without cancel token / time limit).
    pub config: MatcherConfig,
    /// Admitted-edge count at snapshot time — the resume-side sanity
    /// check that the named graph still produces the same edge space.
    pub edge_count: u64,
    /// Matches already published by acked tasks.
    pub matches: u64,
    /// Embeddings emitted to sinks so far (heartbeat bookkeeping).
    pub emitted: u64,
    /// Tasks acked so far (including before earlier resumes).
    pub tasks_acked: u64,
    /// How many times this query has been resumed already.
    pub resumes: u32,
    /// Ledger id-allocator position.
    pub next_task_id: u64,
    /// Ids of acked (published) tasks.
    pub acked: Vec<u64>,
    /// Unfinished shards as `(task_id, epoch, shard)` — unclaimed
    /// pending tasks plus outstanding leases demoted back to tasks.
    pub pending: Vec<(u64, u32, Shard)>,
}

/// Why a snapshot buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The version is not one this build can decode.
    UnsupportedVersion(u16),
    /// The buffer ended before the structure did.
    Truncated,
    /// A field held an impossible value.
    Corrupt(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a snapshot: bad magic"),
            DecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (supported: 1-2)")
            }
            DecodeError::Truncated => write!(f, "snapshot truncated"),
            DecodeError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---- Writer ----

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

// ---- Reader ----

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self, what: &'static str) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Corrupt(what)),
        }
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Corrupt("non-utf8 string"))
    }
    fn done(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::Corrupt("trailing bytes"))
        }
    }
}

// ---- Config codec ----

/// `None` durations are encoded as `u64::MAX` nanoseconds.
const NONE_NS: u64 = u64::MAX;

fn opt_duration_ns(d: Option<Duration>) -> u64 {
    d.map_or(NONE_NS, |d| d.as_nanos().min(NONE_NS as u128 - 1) as u64)
}

fn ns_opt_duration(ns: u64) -> Option<Duration> {
    (ns != NONE_NS).then(|| Duration::from_nanos(ns))
}

fn write_config(w: &mut Writer, cfg: &MatcherConfig) {
    match cfg.strategy {
        Strategy::Timeout { tau } => {
            w.u8(0);
            w.u64(opt_duration_ns(tau));
        }
        Strategy::HalfSteal => w.u8(1),
        Strategy::NewKernel { fanout_threshold } => {
            w.u8(2);
            w.u64(fanout_threshold as u64);
        }
        Strategy::Bfs { budget_bytes } => {
            w.u8(3);
            w.u64(budget_bytes as u64);
        }
        Strategy::Hybrid { budget_bytes, tau } => {
            w.u8(4);
            w.u64(budget_bytes as u64);
            w.u64(opt_duration_ns(tau));
        }
    }
    w.u32(cfg.num_warps as u32);
    match cfg.stack {
        StackConfig::Paged {
            arena_pages,
            table_len,
            spill,
        } => {
            w.u8(0);
            w.u64(arena_pages as u64);
            w.u32(table_len as u32);
            w.bool(spill);
        }
        StackConfig::Array { capacity, policy } => {
            w.u8(1);
            match capacity {
                ArrayCapacity::DMax => w.u8(0),
                ArrayCapacity::Fixed(n) => {
                    w.u8(1);
                    w.u64(n as u64);
                }
            }
            w.u8(match policy {
                OverflowPolicy::Error => 0,
                OverflowPolicy::Truncate => 1,
            });
        }
    }
    w.bool(cfg.plan.symmetry_breaking);
    w.bool(cfg.plan.intersection_reuse);
    w.bool(cfg.fused_injectivity);
    w.bool(cfg.fused_leaf);
    w.bool(cfg.host_edge_filter);
    w.bool(cfg.ct_index);
    w.u64(cfg.chunk_size as u64);
    w.u64(cfg.queue_capacity as u64);
}

fn read_config(r: &mut Reader) -> Result<MatcherConfig, DecodeError> {
    let strategy = match r.u8()? {
        0 => Strategy::Timeout {
            tau: ns_opt_duration(r.u64()?),
        },
        1 => Strategy::HalfSteal,
        2 => Strategy::NewKernel {
            fanout_threshold: r.u64()? as usize,
        },
        3 => Strategy::Bfs {
            budget_bytes: r.u64()? as usize,
        },
        4 => {
            let budget_bytes = r.u64()? as usize;
            Strategy::Hybrid {
                budget_bytes,
                tau: ns_opt_duration(r.u64()?),
            }
        }
        _ => return Err(DecodeError::Corrupt("strategy tag")),
    };
    let num_warps = r.u32()? as usize;
    if num_warps == 0 {
        return Err(DecodeError::Corrupt("zero warps"));
    }
    let stack = match r.u8()? {
        0 => StackConfig::Paged {
            arena_pages: r.u64()? as usize,
            table_len: r.u32()? as usize,
            spill: r.bool("spill flag")?,
        },
        1 => {
            let capacity = match r.u8()? {
                0 => ArrayCapacity::DMax,
                1 => ArrayCapacity::Fixed(r.u64()? as usize),
                _ => return Err(DecodeError::Corrupt("capacity tag")),
            };
            let policy = match r.u8()? {
                0 => OverflowPolicy::Error,
                1 => OverflowPolicy::Truncate,
                _ => return Err(DecodeError::Corrupt("policy tag")),
            };
            StackConfig::Array { capacity, policy }
        }
        _ => return Err(DecodeError::Corrupt("stack tag")),
    };
    let mut cfg = MatcherConfig::tdfs();
    cfg.strategy = strategy;
    cfg.num_warps = num_warps;
    cfg.stack = stack;
    cfg.plan.symmetry_breaking = r.bool("symmetry flag")?;
    cfg.plan.intersection_reuse = r.bool("reuse flag")?;
    cfg.fused_injectivity = r.bool("fused-injectivity flag")?;
    cfg.fused_leaf = r.bool("fused-leaf flag")?;
    cfg.host_edge_filter = r.bool("host-filter flag")?;
    cfg.ct_index = r.bool("ct-index flag")?;
    cfg.chunk_size = r.u64()? as usize;
    cfg.queue_capacity = r.u64()? as usize;
    cfg.time_limit = None;
    cfg.cancel = None;
    Ok(cfg)
}

// ---- Snapshot codec ----

/// Encodes `snap` into the versioned wire format.
pub fn encode(snap: &QuerySnapshot) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(&SNAPSHOT_MAGIC);
    w.u16(SNAPSHOT_VERSION);
    w.str(&snap.graph);
    w.u64(snap.graph_version);
    // Pattern: n, labels, edges.
    let n = snap.pattern.num_vertices();
    w.u32(n as u32);
    for u in 0..n {
        w.u32(snap.pattern.label(u));
    }
    let edges = snap.pattern.edges();
    w.u32(edges.len() as u32);
    for (u, v) in edges {
        w.u8(u as u8);
        w.u8(v as u8);
    }
    write_config(&mut w, &snap.config);
    w.u64(snap.edge_count);
    w.u64(snap.matches);
    w.u64(snap.emitted);
    w.u64(snap.tasks_acked);
    w.u32(snap.resumes);
    w.u64(snap.next_task_id);
    w.u32(snap.acked.len() as u32);
    for &id in &snap.acked {
        w.u64(id);
    }
    w.u32(snap.pending.len() as u32);
    for &(id, epoch, shard) in &snap.pending {
        w.u64(id);
        w.u32(epoch);
        w.u64(shard.start as u64);
        w.u64(shard.end as u64);
    }
    w.buf
}

/// Decodes a snapshot, rejecting bad magic, unknown versions,
/// truncation and trailing bytes.
pub fn decode(bytes: &[u8]) -> Result<QuerySnapshot, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != SNAPSHOT_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u16()?;
    if !(1..=SNAPSHOT_VERSION).contains(&version) {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let graph = r.str()?;
    // Version 1 predates the batch-dynamic catalog: every graph was
    // immutable, i.e. pinned at version 0.
    let graph_version = if version >= 2 { r.u64()? } else { 0 };
    let n = r.u32()? as usize;
    if !(1..=32).contains(&n) {
        return Err(DecodeError::Corrupt("pattern size"));
    }
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(r.u32()?);
    }
    let num_edges = r.u32()? as usize;
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let u = r.u8()? as usize;
        let v = r.u8()? as usize;
        if u >= n || v >= n || u == v {
            return Err(DecodeError::Corrupt("pattern edge"));
        }
        edges.push((u, v));
    }
    let pattern = Pattern::from_edges_labeled(n, &edges, labels);
    let config = read_config(&mut r)?;
    let edge_count = r.u64()?;
    let matches = r.u64()?;
    let emitted = r.u64()?;
    let tasks_acked = r.u64()?;
    let resumes = r.u32()?;
    let next_task_id = r.u64()?;
    let num_acked = r.u32()? as usize;
    let mut acked = Vec::with_capacity(num_acked);
    for _ in 0..num_acked {
        acked.push(r.u64()?);
    }
    let num_pending = r.u32()? as usize;
    let mut pending = Vec::with_capacity(num_pending);
    for _ in 0..num_pending {
        let id = r.u64()?;
        let epoch = r.u32()?;
        let start = r.u64()?;
        let end = r.u64()?;
        if start > end || end > edge_count {
            return Err(DecodeError::Corrupt("shard range"));
        }
        pending.push((
            id,
            epoch,
            Shard {
                start: start as u32,
                end: end as u32,
            },
        ));
    }
    r.done()?;
    Ok(QuerySnapshot {
        graph,
        graph_version,
        pattern,
        config,
        edge_count,
        matches,
        emitted,
        tasks_acked,
        resumes,
        next_task_id,
        acked,
        pending,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QuerySnapshot {
        QuerySnapshot {
            graph: "ba".to_owned(),
            graph_version: 9,
            pattern: Pattern::clique(3),
            config: MatcherConfig::tdfs().with_warps(4),
            edge_count: 100,
            matches: 42,
            emitted: 7,
            tasks_acked: 3,
            resumes: 1,
            next_task_id: 5,
            acked: vec![0, 2, 4],
            pending: vec![
                (1, 0, Shard { start: 20, end: 40 }),
                (3, 2, Shard { start: 60, end: 80 }),
            ],
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let snap = sample();
        let decoded = decode(&encode(&snap)).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn round_trips_every_preset_config() {
        for cfg in [
            MatcherConfig::tdfs(),
            MatcherConfig::tdfs_array(),
            MatcherConfig::no_steal(),
            MatcherConfig::stmatch_like(),
            MatcherConfig::egsm_like(),
            MatcherConfig::pbe_like(),
            MatcherConfig::hybrid(),
        ] {
            let snap = QuerySnapshot {
                config: cfg.clone(),
                ..sample()
            };
            assert_eq!(decode(&encode(&snap)).unwrap().config, cfg);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = encode(&sample());
        bytes[8] = 0x63; // version 99
        bytes[9] = 0x00;
        assert_eq!(decode(&bytes), Err(DecodeError::UnsupportedVersion(99)));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated | DecodeError::BadMagic | DecodeError::Corrupt(_)
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&sample());
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::Corrupt("trailing bytes")));
    }

    #[test]
    fn rejects_out_of_range_shard() {
        let snap = QuerySnapshot {
            pending: vec![(
                1,
                0,
                Shard {
                    start: 90,
                    end: 200, // past edge_count = 100
                },
            )],
            ..sample()
        };
        assert_eq!(
            decode(&encode(&snap)),
            Err(DecodeError::Corrupt("shard range"))
        );
    }

    fn golden_snap(graph_version: u64) -> QuerySnapshot {
        QuerySnapshot {
            graph: "g".to_owned(),
            graph_version,
            pattern: Pattern::clique(3),
            config: MatcherConfig::tdfs().with_warps(2),
            edge_count: 10,
            matches: 5,
            emitted: 0,
            tasks_acked: 1,
            resumes: 0,
            next_task_id: 2,
            acked: vec![0],
            pending: vec![(1, 1, Shard { start: 4, end: 10 })],
        }
    }

    /// The body shared by both golden buffers: everything after the
    /// graph-version point (pattern onward).
    fn golden_tail() -> Vec<u8> {
        vec![
            // pattern: n=3, labels [0,0,0]
            0x03, 0x00, 0x00, 0x00, //
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            // 3 edges: (0,1) (0,2) (1,2)
            0x03, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x02, 0x01, 0x02, //
            // strategy Timeout, tau = 10 ms = 10_000_000 ns
            0x00, 0x80, 0x96, 0x98, 0x00, 0x00, 0x00, 0x00, 0x00, //
            // num_warps = 2
            0x02, 0x00, 0x00, 0x00, //
            // stack Paged { arena_pages: 8192, table_len: 40, spill: true }
            0x00, 0x00, 0x20, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            0x28, 0x00, 0x00, 0x00, 0x01, //
            // plan: symmetry on, reuse on; fused_injectivity, fused_leaf,
            // host_edge_filter off, ct_index off
            0x01, 0x01, 0x01, 0x01, 0x00, 0x00, //
            // chunk_size = 8, queue_capacity = 16384
            0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            0x00, 0x40, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            // edge_count 10, matches 5, emitted 0, tasks_acked 1
            0x0a, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            // resumes 0, next_task_id 2
            0x00, 0x00, 0x00, 0x00, //
            0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            // acked: [0]
            0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            // pending: [(id 1, epoch 1, shard 4..10)]
            0x01, 0x00, 0x00, 0x00, //
            0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            0x01, 0x00, 0x00, 0x00, //
            0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            0x0a, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        ]
    }

    /// Version-1 buffers (no graph-version field) must keep decoding
    /// forever, resolving to `graph_version = 0`.
    #[test]
    fn golden_wire_format_v1_still_decodes() {
        let mut golden: Vec<u8> = vec![
            // magic "TDFSSNAP"
            0x54, 0x44, 0x46, 0x53, 0x53, 0x4e, 0x41, 0x50, //
            // version 1
            0x01, 0x00, //
            // graph name: len 1, "g"
            0x01, 0x00, 0x00, 0x00, 0x67, //
        ];
        golden.extend_from_slice(&golden_tail());
        assert_eq!(decode(&golden).unwrap(), golden_snap(0));
    }

    /// Pins the exact wire bytes of version 2. If this test fails you
    /// changed the format: bump [`SNAPSHOT_VERSION`], keep a decoder
    /// for versions 1 and 2, and re-pin.
    #[test]
    fn golden_wire_format_v2() {
        let snap = golden_snap(3);
        let mut golden: Vec<u8> = vec![
            // magic "TDFSSNAP"
            0x54, 0x44, 0x46, 0x53, 0x53, 0x4e, 0x41, 0x50, //
            // version 2
            0x02, 0x00, //
            // graph name: len 1, "g"
            0x01, 0x00, 0x00, 0x00, 0x67, //
            // graph_version 3
            0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        ];
        golden.extend_from_slice(&golden_tail());
        let bytes = encode(&snap);
        assert_eq!(
            bytes, golden,
            "wire format changed — bump SNAPSHOT_VERSION and re-pin"
        );
        assert_eq!(decode(&golden).unwrap(), snap);
    }
}
