//! Standing queries: exact incremental match maintenance over
//! batch-dynamic catalog graphs.
//!
//! A standing query registers a pattern against a catalog graph
//! ([`crate::Service::register_standing`]) and receives one
//! [`MatchDelta`] per applied [`tdfs_graph::EdgeBatch`]: how many
//! matches the batch created and how many it destroyed, optionally with
//! the concrete embeddings. The deltas are **exact**, not approximate —
//! they satisfy the maintenance identity
//!
//! ```text
//! count(G')  =  count(G)  −  removed  +  added
//! ```
//!
//! where `removed` is the number of pattern matches of the *pre-batch*
//! view that use at least one effectively deleted edge, and `added` is
//! the number of matches of the *post-batch* view that use at least one
//! effectively inserted edge. (Effective = after `DeltaCsr::apply`
//! normalizes the batch against what was actually present; an insert of
//! an existing edge or a delete of a missing one contributes nothing.)
//!
//! ## Why anchored enumeration is exact
//!
//! Every match counted in `removed`/`added` contains a changed edge, so
//! instead of re-scanning the graph the maintainer enumerates only
//! matches *through* changed edges: for each undirected pattern-edge
//! orbit representative `(a, b)` (see
//! [`tdfs_query::automorphism::edge_orbit_reps`]) it runs a **rooted
//! plan** ([`tdfs_query::plan::QueryPlan::build_rooted`]) whose first
//! two levels are pinned to `a, b`, seeded with both orientations of
//! each changed data edge. Any match `m` that maps some pattern edge
//! `{p, q}` onto a changed data edge has an automorphic image mapping
//! the orbit representative of `{p, q}` onto that edge, so the sweep
//! reaches every match class at least once. Rooted plans disable
//! symmetry breaking (a symmetry constraint could discard exactly the
//! orientation that passes through the changed edge), so the same class
//! can surface several times — once per changed edge it contains, per
//! orbit, per orientation. The [`DedupSink`] collapses those to one
//! canonical representative per automorphism class, which makes the
//! reported counts *subgraph* counts, the same unit the symmetry-broken
//! engines and [`tdfs_core::reference_count`] report.
//!
//! Deletions are counted against the pre-batch view (the matches being
//! destroyed still exist there); insertions against the not-yet-
//! published post-batch view. `Service::apply` computes both *before*
//! committing the new version, so a crash between compute and commit
//! (fault point `graph.apply.midbatch`) leaves nothing observable.

use std::collections::HashSet;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

use tdfs_core::{MatchSink, MatcherConfig};
use tdfs_query::automorphism::{automorphisms, edge_orbit_reps, Permutation};
use tdfs_query::plan::QueryPlan;
use tdfs_query::Pattern;

/// What one applied batch did to one standing query's match set.
///
/// Counts are in subgraph units (automorphism classes), matching the
/// symmetry-broken full-query counts. Embeddings, when requested, are
/// pattern-vertex-indexed (`m[u]` = data vertex for pattern vertex `u`)
/// and canonicalized (lexicographic minimum over the pattern's
/// automorphisms), so the same subgraph always reports the same tuple.
#[derive(Debug, Clone)]
pub struct MatchDelta {
    /// Catalog name of the mutated graph.
    pub graph: String,
    /// The [`tdfs_graph::GraphVersion`] the graph reached with this
    /// batch. Strictly increasing across the deltas a subscriber sees —
    /// the service's notify retry loop deduplicates redeliveries by
    /// version, so each version is delivered exactly once.
    pub version: u64,
    /// Matches present in the new version that were not in the old.
    pub added: u64,
    /// Matches present in the old version that are not in the new.
    pub removed: u64,
    /// The added embeddings, when the registration asked for them.
    pub added_embeddings: Option<Vec<Vec<u32>>>,
    /// The removed embeddings, when the registration asked for them.
    pub removed_embeddings: Option<Vec<Vec<u32>>>,
}

/// Registration parameters for [`crate::Service::register_standing`].
#[derive(Clone)]
pub struct StandingRequest {
    /// Catalog name of the graph to watch.
    pub graph: String,
    /// Pattern whose match set is maintained.
    pub pattern: Pattern,
    /// Engine configuration for the maintenance runs. The cancel token
    /// and time limit are stripped at registration: a maintenance pass
    /// that stops early would break the exactness identity.
    pub config: MatcherConfig,
    /// When set, deltas carry the concrete embeddings, not just counts.
    pub report_embeddings: bool,
}

impl StandingRequest {
    /// A counting subscription with the default T-DFS engine.
    pub fn new(graph: impl Into<String>, pattern: Pattern) -> Self {
        Self {
            graph: graph.into(),
            pattern,
            config: MatcherConfig::tdfs(),
            report_embeddings: false,
        }
    }

    /// Sets the engine configuration used by maintenance passes.
    pub fn with_config(mut self, config: MatcherConfig) -> Self {
        self.config = config;
        self
    }

    /// Requests concrete embeddings in each delta.
    pub fn with_embeddings(mut self) -> Self {
        self.report_embeddings = true;
        self
    }
}

/// Subscriber callback. Invoked synchronously from
/// [`crate::Service::apply`], once per applied batch, after commit.
pub type NotifyFn = dyn Fn(&MatchDelta) + Send + Sync;

/// A registered standing query (internal registry entry).
pub(crate) struct StandingQuery {
    /// Catalog name of the watched graph.
    pub(crate) graph: String,
    /// The maintained pattern.
    pub(crate) pattern: Pattern,
    /// Sanitized engine config (no cancel, no time limit).
    pub(crate) config: MatcherConfig,
    /// Whether deltas carry embeddings.
    pub(crate) report_embeddings: bool,
    /// The pattern's full automorphism group (canonicalization key).
    pub(crate) aut: Arc<Vec<Permutation>>,
    /// One symmetry-free rooted plan per undirected pattern-edge orbit
    /// representative; each pins its anchor edge to matching-order
    /// positions 0 and 1, where the changed-edge seeds land.
    pub(crate) plans: Vec<Arc<QueryPlan>>,
    /// Where deltas go.
    pub(crate) callback: Arc<NotifyFn>,
    /// Highest graph version already delivered — the fence that turns
    /// the at-least-once notify retry loop (fault point
    /// `service.notify.drop`) into exactly-once delivery.
    pub(crate) last_version: AtomicU64,
}

impl StandingQuery {
    /// Compiles a registration: automorphism group, edge-orbit
    /// representatives, and one rooted plan per representative.
    /// `registered_at` is the watched graph's current version; deltas
    /// are only produced for versions beyond it.
    pub(crate) fn build(
        request: StandingRequest,
        callback: Arc<NotifyFn>,
        registered_at: u64,
    ) -> Self {
        let mut config = request.config;
        config.cancel = None;
        config.time_limit = None;
        let aut = Arc::new(automorphisms(&request.pattern));
        let plans = edge_orbit_reps(&request.pattern)
            .into_iter()
            .map(|(a, b)| Arc::new(QueryPlan::build_rooted(&request.pattern, a, b, config.plan)))
            .collect();
        Self {
            graph: request.graph,
            pattern: request.pattern,
            config,
            report_embeddings: request.report_embeddings,
            aut,
            plans,
            callback,
            last_version: AtomicU64::new(registered_at),
        }
    }
}

/// Both orientations of each changed (normalized `u < v`) data edge.
///
/// A rooted plan pins pattern vertices `(a, b)` onto the seed endpoints
/// in order, and a match may put either endpoint of the data edge at
/// `a` — so every changed edge seeds both `(u, v)` and `(v, u)`.
pub(crate) fn oriented_seeds(changed: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(changed.len() * 2);
    for &(u, v) in changed {
        out.push((u, v));
        out.push((v, u));
    }
    out
}

/// Canonicalizing match collector shared by every maintenance pass of
/// one (standing query × batch side): anchored enumeration visits the
/// same subgraph once per (changed edge it contains × orbit ×
/// orientation), and this sink collapses the repeats to one canonical
/// representative per automorphism class.
///
/// Receives **pattern-vertex-indexed** assignments: on the queued path
/// the service's fan-out sink remaps matching-order positions before
/// the client sink, and the inline fallback wraps itself in the same
/// remapper. Insertion is idempotent, which is what lets a shed or
/// killed maintenance job simply re-run (queued or inline) without
/// double counting.
pub(crate) struct DedupSink {
    aut: Arc<Vec<Permutation>>,
    inner: Mutex<DedupInner>,
}

struct DedupInner {
    seen: HashSet<Vec<u32>>,
    keep: Option<Vec<Vec<u32>>>,
}

impl DedupSink {
    pub(crate) fn new(aut: Arc<Vec<Permutation>>, keep_embeddings: bool) -> Self {
        Self {
            aut,
            inner: Mutex::new(DedupInner {
                seen: HashSet::new(),
                keep: keep_embeddings.then(Vec::new),
            }),
        }
    }

    /// Lexicographically smallest automorphic image of `m` — the class
    /// representative. The group always contains the identity, so the
    /// fold never comes up empty.
    fn canonical(&self, m: &[u32]) -> Vec<u32> {
        let mut best: Option<Vec<u32>> = None;
        for sigma in self.aut.iter() {
            let img: Vec<u32> = sigma.iter().map(|&s| m[s]).collect();
            if best.as_ref().is_none_or(|b| img < *b) {
                best = Some(img);
            }
        }
        best.unwrap_or_else(|| m.to_vec())
    }

    /// Distinct classes collected, plus the sorted embeddings when
    /// tracked. Consumes the collected state.
    pub(crate) fn take(&self) -> (u64, Option<Vec<Vec<u32>>>) {
        let mut g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let count = g.seen.len() as u64;
        let embeddings = g.keep.take().map(|mut v| {
            v.sort_unstable();
            v
        });
        g.seen.clear();
        (count, embeddings)
    }
}

impl MatchSink for DedupSink {
    fn emit(&self, m: &[u32]) {
        let key = self.canonical(m);
        let mut g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if g.seen.insert(key.clone()) {
            if let Some(keep) = &mut g.keep {
                keep.push(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_collapses_automorphic_images_of_one_triangle() {
        let tri = Pattern::clique(3);
        let aut = Arc::new(automorphisms(&tri));
        assert_eq!(aut.len(), 6);
        let sink = DedupSink::new(aut, true);
        // All 6 images of the same data triangle {7, 8, 9} …
        for m in [
            [7u32, 8, 9],
            [7, 9, 8],
            [8, 7, 9],
            [8, 9, 7],
            [9, 7, 8],
            [9, 8, 7],
        ] {
            sink.emit(&m);
        }
        // … plus a genuinely different one.
        sink.emit(&[9, 8, 10]);
        let (count, embeddings) = sink.take();
        assert_eq!(count, 2);
        assert_eq!(embeddings.unwrap(), vec![vec![7, 8, 9], vec![8, 9, 10]]);
        assert_eq!(sink.take().0, 0, "take drains");
    }

    #[test]
    fn oriented_seeds_doubles_each_edge() {
        assert_eq!(
            oriented_seeds(&[(1, 2), (3, 5)]),
            vec![(1, 2), (2, 1), (3, 5), (5, 3)]
        );
    }

    #[test]
    fn build_compiles_one_rooted_plan_per_orbit_and_strips_limits() {
        let house = Pattern::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)]);
        let mut cfg = MatcherConfig::tdfs();
        cfg.time_limit = Some(std::time::Duration::from_millis(1));
        let req = StandingRequest::new("g", house.clone()).with_config(cfg);
        let sq = StandingQuery::build(req, Arc::new(|_d: &MatchDelta| {}), 3);
        assert_eq!(sq.plans.len(), 4, "house has four edge orbits");
        assert!(sq.config.time_limit.is_none());
        assert!(sq.config.cancel.is_none());
        for plan in &sq.plans {
            assert_eq!(plan.aut_size, 1, "rooted plans are symmetry-free");
        }
        assert_eq!(
            sq.last_version.load(std::sync::atomic::Ordering::Relaxed),
            3
        );
    }
}
