//! Service-layer chaos tests (requires `--features chaos`): the
//! `service.worker.run` fault point drives the poisoned-worker recovery
//! path from the outside — no cooperating sink required, the worker
//! thread itself is killed mid-job.
//!
//! Every test holds a `ChaosGuard` because the fault-point registry is
//! process-global; the guard serializes chaos tests within one binary.

use std::sync::Arc;
use std::time::Duration;

use tdfs_core::{reference_count, EngineError, MatcherConfig};
use tdfs_graph::GraphBuilder;
use tdfs_query::plan::QueryPlan;
use tdfs_query::Pattern;
use tdfs_service::{DurableConfig, GovernorConfig, QueryRequest, Service, ServiceConfig};
use tdfs_testkit::fault::{self, Action, ChaosScript, Trigger};

fn k5() -> Arc<tdfs_graph::CsrGraph> {
    let mut b = GraphBuilder::new();
    for u in 0..5 {
        for v in (u + 1)..5 {
            b.push_edge(u, v);
        }
    }
    Arc::new(b.build())
}

/// `service.worker.run` panics the first job: the query fails with
/// `WorkerPanicked`, the pool restarts the dead worker, and the next
/// query completes on the replacement.
#[test]
fn injected_worker_crash_fails_query_and_restarts_worker() {
    let _chaos = ChaosScript::new()
        .on(
            "service.worker.run",
            Trigger::Nth(1),
            Action::Panic("injected worker crash"),
        )
        .install();
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        plan_cache_capacity: 4,
        ..ServiceConfig::default()
    });
    svc.register_graph("k5", k5());

    // `.with_durable(false)` pins the legacy single-shot path: on the
    // durable path this same fault point fires per shard and the panic
    // would be recovered instead of failing the query.
    let out = svc
        .submit(QueryRequest::new("k5", Pattern::clique(3)).with_durable(false))
        .unwrap()
        .wait();
    assert!(matches!(out.result, Err(EngineError::WorkerPanicked)));
    assert_eq!(fault::injections("service.worker.run"), 1);

    // The sole worker was replaced: the next query still runs, on an
    // unscripted pass through the same fault point.
    let out = svc
        .submit(QueryRequest::new("k5", Pattern::clique(3)).with_durable(false))
        .unwrap()
        .wait();
    assert_eq!(out.result.unwrap().matches, 10);
    assert!(fault::hits("service.worker.run") >= 2);

    let m = svc.metrics();
    assert_eq!(m.worker_panics, 1);
    assert_eq!(m.workers_restarted, 1);
    assert_eq!(m.failed, 1);
    assert_eq!(m.completed, 1);
    svc.shutdown();
}

/// A crash storm that outlives the restart budget: every scripted job
/// dies, restarts stop at the budget, and the pool still serves the
/// first unscripted query — it never shrinks to zero workers.
#[test]
fn crash_storm_exhausts_restart_budget_without_losing_the_pool() {
    let _chaos = ChaosScript::new()
        .on(
            "service.worker.run",
            Trigger::FirstN(3),
            Action::Panic("injected crash storm"),
        )
        .install();
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        plan_cache_capacity: 4,
        worker_restart_limit: 2,
        ..ServiceConfig::default()
    });
    svc.register_graph("k5", k5());

    for i in 0..3 {
        let out = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)).with_durable(false))
            .unwrap()
            .wait();
        assert!(
            matches!(out.result, Err(EngineError::WorkerPanicked)),
            "storm job {i} must die"
        );
    }
    // Third panic found the budget spent: no third restart, but the
    // surviving thread keeps draining the queue.
    let out = svc
        .submit(QueryRequest::new("k5", Pattern::clique(4)).with_durable(false))
        .unwrap()
        .wait();
    assert_eq!(out.result.unwrap().matches, 5);

    let m = svc.metrics();
    assert_eq!(m.worker_panics, 3);
    assert_eq!(m.workers_restarted, 2);
    assert_eq!(m.failed, 3);
    assert_eq!(m.completed, 1);
    let s = m.summary();
    assert!(
        s.contains("3 worker panics") && s.contains("2 workers restarted"),
        "summary missing fault counters:\n{s}"
    );
    svc.shutdown();
}

/// `service.governor.pressure` forces the governor to see phantom
/// memory pressure for the first N ticks: the in-flight durable query
/// is snapshot-suspended even though the real budget is nearly idle,
/// then resumes on the first honest pressure reading — and still
/// produces the exact count.
#[test]
fn phantom_pressure_suspends_then_resumes_with_exact_count() {
    let _chaos = ChaosScript::new()
        .on(
            "service.governor.pressure",
            Trigger::FirstN(400),
            Action::Inject,
        )
        .install();
    let svc = Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        plan_cache_capacity: 4,
        durability: DurableConfig {
            shard_edges: 4,
            ..DurableConfig::default()
        },
        governor: GovernorConfig {
            // Ample budget: any real pressure reading is ~0, so the
            // suspension below is attributable only to the fault point.
            memory_budget_pages: Some(1_000_000),
            tick: Duration::from_millis(1),
            ..GovernorConfig::default()
        },
        ..ServiceConfig::default()
    });
    let g = Arc::new(tdfs_graph::generators::barabasi_albert(800, 6, 13));
    svc.register_graph("ba", g.clone());
    let pattern = Pattern::clique(4);
    let config = MatcherConfig::tdfs().with_warps(2);
    let want = reference_count(&g, &QueryPlan::build_with(&pattern, config.plan));

    let out = svc
        .submit(QueryRequest::new("ba", pattern).with_config(config))
        .unwrap()
        .wait();
    assert_eq!(out.result.unwrap().matches, want, "suspension lost counts");

    let m = svc.metrics();
    assert!(
        m.suspends >= 1,
        "phantom pressure never suspended the query"
    );
    assert!(m.snapshots_taken >= 1, "suspension must checkpoint first");
    assert_eq!(
        m.budget_in_use_pages, 0,
        "pages leaked across suspend/resume"
    );
    assert!(fault::injections("service.governor.pressure") >= 1);
    svc.shutdown();
}
