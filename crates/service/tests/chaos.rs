//! Service-layer chaos tests (requires `--features chaos`): the
//! `service.worker.run` fault point drives the poisoned-worker recovery
//! path from the outside — no cooperating sink required, the worker
//! thread itself is killed mid-job.
//!
//! Every test holds a `ChaosGuard` because the fault-point registry is
//! process-global; the guard serializes chaos tests within one binary.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tdfs_core::{reference_count, EngineError, MatcherConfig};
use tdfs_graph::GraphBuilder;
use tdfs_query::plan::QueryPlan;
use tdfs_query::Pattern;
use tdfs_service::{
    BreakerConfig, BreakerState, DurableConfig, GovernorConfig, QueryRequest, Rejected, Service,
    ServiceConfig,
};
use tdfs_testkit::fault::{self, Action, ChaosScript, Trigger};

fn k5() -> Arc<tdfs_graph::CsrGraph> {
    let mut b = GraphBuilder::new();
    for u in 0..5 {
        for v in (u + 1)..5 {
            b.push_edge(u, v);
        }
    }
    Arc::new(b.build())
}

/// `service.worker.run` panics the first job: the query fails with
/// `WorkerPanicked`, the pool restarts the dead worker, and the next
/// query completes on the replacement.
#[test]
fn injected_worker_crash_fails_query_and_restarts_worker() {
    let _chaos = ChaosScript::new()
        .on(
            "service.worker.run",
            Trigger::Nth(1),
            Action::Panic("injected worker crash"),
        )
        .install();
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        plan_cache_capacity: 4,
        ..ServiceConfig::default()
    });
    svc.register_graph("k5", k5());

    // `.with_durable(false)` pins the legacy single-shot path: on the
    // durable path this same fault point fires per shard and the panic
    // would be recovered instead of failing the query.
    let out = svc
        .submit(QueryRequest::new("k5", Pattern::clique(3)).with_durable(false))
        .unwrap()
        .wait();
    assert!(matches!(out.result, Err(EngineError::WorkerPanicked)));
    assert_eq!(fault::injections("service.worker.run"), 1);

    // The sole worker was replaced: the next query still runs, on an
    // unscripted pass through the same fault point.
    let out = svc
        .submit(QueryRequest::new("k5", Pattern::clique(3)).with_durable(false))
        .unwrap()
        .wait();
    assert_eq!(out.result.unwrap().matches, 10);
    assert!(fault::hits("service.worker.run") >= 2);

    let m = svc.metrics();
    assert_eq!(m.worker_panics, 1);
    assert_eq!(m.workers_restarted, 1);
    assert_eq!(m.failed, 1);
    assert_eq!(m.completed, 1);
    svc.shutdown();
}

/// A crash storm that outlives the restart budget: every scripted job
/// dies, restarts stop at the budget, and the pool still serves the
/// first unscripted query — it never shrinks to zero workers.
#[test]
fn crash_storm_exhausts_restart_budget_without_losing_the_pool() {
    let _chaos = ChaosScript::new()
        .on(
            "service.worker.run",
            Trigger::FirstN(3),
            Action::Panic("injected crash storm"),
        )
        .install();
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        plan_cache_capacity: 4,
        worker_restart_limit: 2,
        ..ServiceConfig::default()
    });
    svc.register_graph("k5", k5());

    for i in 0..3 {
        let out = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)).with_durable(false))
            .unwrap()
            .wait();
        assert!(
            matches!(out.result, Err(EngineError::WorkerPanicked)),
            "storm job {i} must die"
        );
    }
    // Third panic found the budget spent: no third restart, but the
    // surviving thread keeps draining the queue.
    let out = svc
        .submit(QueryRequest::new("k5", Pattern::clique(4)).with_durable(false))
        .unwrap()
        .wait();
    assert_eq!(out.result.unwrap().matches, 5);

    let m = svc.metrics();
    assert_eq!(m.worker_panics, 3);
    assert_eq!(m.workers_restarted, 2);
    assert_eq!(m.failed, 3);
    assert_eq!(m.completed, 1);
    let s = m.summary();
    assert!(
        s.contains("3 worker panics") && s.contains("2 workers restarted"),
        "summary missing fault counters:\n{s}"
    );
    svc.shutdown();
}

/// `service.governor.pressure` forces the governor to see phantom
/// memory pressure for the first N ticks: the in-flight durable query
/// is snapshot-suspended even though the real budget is nearly idle,
/// then resumes on the first honest pressure reading — and still
/// produces the exact count.
#[test]
fn phantom_pressure_suspends_then_resumes_with_exact_count() {
    let _chaos = ChaosScript::new()
        .on(
            "service.governor.pressure",
            Trigger::FirstN(400),
            Action::Inject,
        )
        .install();
    let svc = Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        plan_cache_capacity: 4,
        durability: DurableConfig {
            shard_edges: 4,
            ..DurableConfig::default()
        },
        governor: GovernorConfig {
            // Ample budget: any real pressure reading is ~0, so the
            // suspension below is attributable only to the fault point.
            memory_budget_pages: Some(1_000_000),
            tick: Duration::from_millis(1),
            ..GovernorConfig::default()
        },
        ..ServiceConfig::default()
    });
    let g = Arc::new(tdfs_graph::generators::barabasi_albert(800, 6, 13));
    svc.register_graph("ba", g.clone());
    let pattern = Pattern::clique(4);
    let config = MatcherConfig::tdfs().with_warps(2);
    let want = reference_count(&g, &QueryPlan::build_with(&pattern, config.plan));

    let out = svc
        .submit(QueryRequest::new("ba", pattern).with_config(config))
        .unwrap()
        .wait();
    assert_eq!(out.result.unwrap().matches, want, "suspension lost counts");

    let m = svc.metrics();
    assert!(
        m.suspends >= 1,
        "phantom pressure never suspended the query"
    );
    assert!(m.snapshots_taken >= 1, "suspension must checkpoint first");
    assert_eq!(
        m.budget_in_use_pages, 0,
        "pages leaked across suspend/resume"
    );
    assert!(fault::injections("service.governor.pressure") >= 1);
    svc.shutdown();
}

/// The half-open probe *fails* — a scripted stall at
/// `service.worker.run` holds the probe past its deadline — and the
/// breaker re-opens instead of closing (the BAD-probe arm of the
/// half-open state; the happy-path lifecycle is covered in
/// `overload.rs`). A second cooldown then half-opens it again and a
/// clean probe finally closes the circuit.
#[test]
fn breaker_half_open_bad_probe_reopens_then_recovers() {
    let svc = Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        plan_cache_capacity: 8,
        governor: GovernorConfig {
            breaker: BreakerConfig {
                enabled: true,
                window: 8,
                min_samples: 4,
                trip_ratio: 0.5,
                cooldown: Duration::from_millis(250),
            },
            tick: Duration::from_millis(2),
            ..GovernorConfig::default()
        },
        ..ServiceConfig::default()
    });
    svc.register_graph("k5", k5());
    // Four straight deadline misses trip the breaker: Closed → Open.
    for _ in 0..4 {
        let out = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)).with_deadline(Duration::ZERO))
            .unwrap()
            .wait();
        assert!(matches!(out.result, Err(EngineError::TimeLimit)));
    }
    assert_eq!(
        svc.submit(QueryRequest::new("k5", Pattern::clique(3)))
            .unwrap_err(),
        Rejected::BrownedOut
    );
    // Arm the stall: the next job a worker picks up — the half-open
    // recovery probe — sleeps well past its deadline and records a BAD
    // outcome.
    let _chaos = ChaosScript::new()
        .on(
            "service.worker.run",
            Trigger::Nth(1),
            Action::Delay { millis: 200 },
        )
        .install();
    let deadline = Instant::now() + Duration::from_secs(10);
    let probe = loop {
        match svc.submit(
            QueryRequest::new("k5", Pattern::clique(3))
                .with_deadline(Duration::from_millis(20))
                .with_durable(false),
        ) {
            Ok(h) => break h,
            Err(Rejected::BrownedOut) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("unexpected rejection {e:?}"),
        }
    };
    let out = probe.wait();
    assert!(
        matches!(out.result, Err(EngineError::TimeLimit)),
        "the stalled probe must miss its deadline, got {:?}",
        out.result
    );
    assert_eq!(fault::injections("service.worker.run"), 1);
    // The bad probe re-opens the circuit: transition #3
    // (Closed → Open → HalfOpen → Open).
    let deadline = Instant::now() + Duration::from_secs(10);
    while svc.metrics().breaker_state_changes < 3 {
        assert!(
            Instant::now() < deadline,
            "the bad probe never re-opened the breaker: {:?}",
            svc.metrics()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Second cooldown, second probe — unscripted this time, so it
    // succeeds and closes the circuit for good.
    let deadline = Instant::now() + Duration::from_secs(10);
    let probe = loop {
        match svc.submit(QueryRequest::new("k5", Pattern::clique(3))) {
            Ok(h) => break h,
            Err(Rejected::BrownedOut) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("unexpected rejection {e:?}"),
        }
    };
    assert_eq!(probe.wait().result.unwrap().matches, 10);
    let m = svc.metrics();
    assert_eq!(m.breaker_state, BreakerState::Closed);
    assert!(
        m.breaker_state_changes >= 5,
        "closed → open → half-open → open → half-open → closed, got {}",
        m.breaker_state_changes
    );
    assert!(m.deadline_expired >= 5, "four trips plus the bad probe");
    assert!(m.rejected_brownout >= 1);
    svc.shutdown();
}

/// A governor-suspended durable query survives a restart with an exact
/// count: phantom pressure makes the governor suspend it,
/// `suspend_to_disk` persists that checkpoint, the service is dropped
/// mid-query (the "kill"), and a fresh [`Service::open`] of the same
/// state directory re-admits it — where the still-lying governor
/// suspends it *again*, so a manual `unsuspend` once the chaos clears
/// is what releases it to completion.
#[test]
fn reopened_service_resumes_a_governor_suspended_query_exactly() {
    let dir = tdfs_testkit::TempDir::new("tdfs-chaos-govresume").unwrap();
    let g = Arc::new(tdfs_graph::generators::barabasi_albert(800, 6, 13));
    let pattern = Pattern::clique(4);
    let config = MatcherConfig::tdfs().with_warps(2);
    let want = reference_count(&g, &QueryPlan::build_with(&pattern, config.plan));
    let service_config = || ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        plan_cache_capacity: 4,
        durability: DurableConfig {
            shard_edges: 8,
            ..DurableConfig::default()
        },
        governor: GovernorConfig {
            memory_budget_pages: Some(1_000_000),
            // Auto-resume is impossible (pressure is never negative):
            // only `unsuspend` — or shutdown's drain — may clear a
            // suspension, which makes every step below deterministic.
            resume_low_water: -1.0,
            tick: Duration::from_millis(1),
            ..GovernorConfig::default()
        },
        ..ServiceConfig::default()
    };

    {
        let chaos = ChaosScript::new()
            .on(
                "service.governor.pressure",
                Trigger::FirstN(1_000_000),
                Action::Inject,
            )
            .install();
        let svc = Service::open(dir.path(), service_config()).unwrap().service;
        svc.register_graph_persistent("ba", g.clone()).unwrap();
        let h = svc
            .submit(QueryRequest::new("ba", pattern.clone()).with_config(config.clone()))
            .unwrap();
        let id = h.id();
        let deadline = Instant::now() + Duration::from_secs(20);
        while svc.metrics().suspends == 0 {
            assert!(
                Instant::now() < deadline,
                "phantom pressure never suspended the query"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Persist the governor's checkpoint (transient `NotStarted` /
        // `UnknownQuery` while the query sits queued).
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match svc.suspend_to_disk(id) {
                Ok(_) => break,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("suspend_to_disk failed: {e}"),
            }
        }
        // The "kill": drop the service with the query suspended. (Stop
        // lying first; shutdown unsuspends and drains in-process, but
        // the persisted checkpoint stays on disk regardless.)
        drop(chaos);
        drop(svc);
    }

    let chaos = ChaosScript::new()
        .on(
            "service.governor.pressure",
            Trigger::FirstN(1_000_000),
            Action::Inject,
        )
        .install();
    let opened = Service::open(dir.path(), service_config()).unwrap();
    assert!(opened.failed.is_empty(), "{:?}", opened.failed);
    assert_eq!(opened.resumed.len(), 1, "the checkpoint must re-admit");
    let svc = opened.service;
    let h = opened.resumed.into_iter().next().unwrap();
    let id = h.id();
    // The reopened service's governor sees the same phantom pressure
    // and suspends the resumed query too.
    let deadline = Instant::now() + Duration::from_secs(20);
    while svc.metrics().suspends == 0 {
        assert!(
            Instant::now() < deadline,
            "the resumed query was never governor-suspended"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    drop(chaos); // honest pressure again — but resume_low_water keeps it parked
    assert!(
        svc.unsuspend(id),
        "the resumed query must still be suspended"
    );
    let out = h.wait();
    assert_eq!(
        out.result.unwrap().matches,
        want,
        "suspend → kill → open → unsuspend lost counts"
    );
    let m = svc.metrics();
    assert_eq!(m.resumes, 1);
    assert!(m.suspends >= 1);
    // No zero-page assertion here: the persistent graph is disk-resident
    // and its decode cache retains a few budget pages by design.
    svc.shutdown();
}
