//! Durable-path chaos tests (requires `--features chaos`): injected
//! worker kills are recovered by lease reclaim, zombie acks are fenced
//! by the epoch, seeded random kill/stall schedules never corrupt the
//! count (including across a snapshot/resume cut), and a permanently
//! failing shard wedges the query with diagnostics instead of looping.
//!
//! Every test holds a `ChaosGuard`: the fault-point registry is
//! process-global, so chaos tests serialize within one binary.

use std::sync::Arc;
use std::time::Duration;

use tdfs_core::{reference_count, EngineError, MatcherConfig};
use tdfs_graph::generators::barabasi_albert;
use tdfs_query::plan::QueryPlan;
use tdfs_query::Pattern;
use tdfs_service::{DurableConfig, QueryRequest, Service, ServiceConfig, SnapshotError};
use tdfs_testkit::fault::{self, Action, ChaosScript, Trigger};

fn durable_service(d: DurableConfig) -> Service {
    Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        plan_cache_capacity: 16,
        durability: d,
        ..ServiceConfig::default()
    })
}

fn engines() -> Vec<(&'static str, MatcherConfig)> {
    vec![
        ("tdfs", MatcherConfig::tdfs().with_warps(2)),
        ("no_steal", MatcherConfig::no_steal().with_warps(2)),
        ("stmatch", MatcherConfig::stmatch_like().with_warps(2)),
        ("egsm", MatcherConfig::egsm_like().with_warps(2)),
        ("pbe", MatcherConfig::pbe_like().with_warps(2)),
    ]
}

fn patterns() -> Vec<(&'static str, Pattern)> {
    vec![
        ("k3", Pattern::clique(3)),
        ("k4", Pattern::clique(4)),
        (
            "house",
            Pattern::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)]),
        ),
    ]
}

/// The headline acceptance test: a worker killed mid-query via the
/// `service.worker.run` fault point. On the durable path the panic
/// costs one shard, not the query — the lease fails over, the shard
/// re-executes, and the final count is identical to a fault-free run.
#[test]
fn killed_worker_mid_query_completes_with_the_exact_count() {
    let _chaos = ChaosScript::new()
        .on(
            "service.worker.run",
            Trigger::Nth(1),
            Action::Panic("injected shard kill"),
        )
        .install();
    let g = Arc::new(barabasi_albert(300, 5, 7));
    let svc = durable_service(DurableConfig {
        shard_edges: 32,
        ..DurableConfig::default()
    });
    svc.register_graph("ba", g.clone());
    let pattern = Pattern::clique(4);
    let cfg = MatcherConfig::tdfs().with_warps(2);
    let want = reference_count(&g, &QueryPlan::build_with(&pattern, cfg.plan));

    let out = svc
        .submit(QueryRequest::new("ba", pattern).with_config(cfg))
        .unwrap()
        .wait();
    assert_eq!(
        out.result.expect("kill must be recovered").matches,
        want,
        "recovered count differs from the fault-free run"
    );
    assert_eq!(fault::injections("service.worker.run"), 1);

    let m = svc.metrics();
    assert!(m.leases_reclaimed > 0, "the killed shard was reclaimed");
    assert_eq!(m.failed, 0);
    assert_eq!(
        m.worker_panics, 0,
        "the service worker itself must survive a shard kill"
    );
    svc.shutdown();
}

/// Epoch fencing: a worker that finishes its shard but stalls past the
/// lease deadline before acking (the `service.durable.ack` point sleeps
/// through the wall-clock timeout) is a zombie. The watchdog reclaims
/// its lease and the shard re-executes; when the zombie wakes its ack
/// carries a stale epoch and is fenced, so the shard's count still
/// lands exactly once.
#[test]
fn zombie_ack_is_fenced_and_the_count_lands_exactly_once() {
    let _chaos = ChaosScript::new()
        .on(
            "service.durable.ack",
            Trigger::Nth(1),
            Action::Sleep { millis: 150 },
        )
        .install();
    let g = Arc::new(barabasi_albert(300, 5, 8));
    let svc = durable_service(DurableConfig {
        shard_edges: 32,
        lease_timeout: Duration::from_millis(10),
        watchdog_interval: Duration::from_millis(1),
        ..DurableConfig::default()
    });
    svc.register_graph("ba", g.clone());
    let pattern = Pattern::clique(3);
    let cfg = MatcherConfig::tdfs().with_warps(2);
    let want = reference_count(&g, &QueryPlan::build_with(&pattern, cfg.plan));

    let out = svc
        .submit(QueryRequest::new("ba", pattern).with_config(cfg))
        .unwrap()
        .wait();
    assert_eq!(out.result.unwrap().matches, want, "zombie double-counted");

    let zombies = fault::injections("service.durable.ack");
    assert_eq!(zombies, 1);
    let m = svc.metrics();
    assert!(
        m.leases_fenced >= zombies,
        "every zombie ack must be fenced: {} fenced, {} zombies",
        m.leases_fenced,
        zombies
    );
    assert!(m.leases_reclaimed >= 1, "the stalled lease was reclaimed");
    assert_eq!(m.failed, 0);
    svc.shutdown();
}

/// Seeded random kill/stall schedules, every engine x K3/K4/house:
/// shards die with probability 0.15 and zombie-stall with probability
/// 0.1, a snapshot is cut mid-run, the original is cancelled, and the
/// resumed query must land on the uninterrupted count. The seed varies
/// per (engine, pattern) so each case sees a different schedule, yet
/// stays reproducible.
#[test]
fn seeded_kill_stall_schedules_preserve_counts_across_resume() {
    let g = Arc::new(barabasi_albert(250, 4, 9));
    for (pi, (pname, pattern)) in patterns().into_iter().enumerate() {
        for (ei, (ename, cfg)) in engines().into_iter().enumerate() {
            let seed = 1000 + (pi * 10 + ei) as u64;
            let _chaos = ChaosScript::new()
                .on(
                    "service.worker.run",
                    Trigger::Probability(0.15),
                    Action::Panic("scheduled shard kill"),
                )
                .on(
                    "service.durable.ack",
                    Trigger::Probability(0.10),
                    Action::Sleep { millis: 30 },
                )
                .seed(seed)
                .install();
            let svc = durable_service(DurableConfig {
                shard_edges: 16,
                lease_timeout: Duration::from_millis(10),
                watchdog_interval: Duration::from_millis(1),
                max_task_epochs: 64,
                ..DurableConfig::default()
            });
            svc.register_graph("ba", g.clone());
            let want = reference_count(&g, &QueryPlan::build_with(&pattern, cfg.plan));

            let h = svc
                .submit(QueryRequest::new("ba", pattern.clone()).with_config(cfg))
                .unwrap();
            // Cut a snapshot mid-run (or just after completion — both
            // must resume to the same total), then kill the original.
            let id = h.id();
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            let bytes = loop {
                match svc.snapshot(id) {
                    Ok(b) => break b,
                    Err(SnapshotError::NotStarted(_) | SnapshotError::UnknownQuery(_))
                        if std::time::Instant::now() < deadline =>
                    {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    Err(e) => panic!("{ename}/{pname} seed {seed}: snapshot failed: {e}"),
                }
            };
            h.cancel();
            let _ = h.wait();

            // The resumed run keeps absorbing the same chaos schedule.
            let out = svc.resume(&bytes).unwrap().wait();
            assert_eq!(
                out.result
                    .unwrap_or_else(|e| panic!("{ename}/{pname} seed {seed}: {e}"))
                    .matches,
                want,
                "{ename}/{pname} seed {seed}: resumed count diverged"
            );
            svc.shutdown();
        }
    }
}

/// A shard that dies on every attempt makes no progress; once its epoch
/// exceeds `max_task_epochs` the watchdog fails the query as `Wedged`
/// with diagnostics naming the stuck task, instead of reclaiming
/// forever.
#[test]
fn permanently_dying_shard_wedges_the_query_with_diagnostics() {
    let _chaos = ChaosScript::new()
        .on(
            "service.worker.run",
            Trigger::Always,
            Action::Panic("unrecoverable shard"),
        )
        .install();
    let g = Arc::new(barabasi_albert(100, 3, 10));
    let svc = durable_service(DurableConfig {
        shard_edges: 64,
        max_task_epochs: 3,
        watchdog_interval: Duration::from_millis(1),
        ..DurableConfig::default()
    });
    svc.register_graph("ba", g.clone());

    let h = svc
        .submit(QueryRequest::new("ba", Pattern::clique(3)))
        .unwrap();
    let id = h.id();
    let out = h.wait();
    assert!(
        matches!(out.result, Err(EngineError::Wedged)),
        "expected Wedged, got {:?}",
        out.result
    );
    let p = svc.progress(id).expect("wedged query stays inspectable");
    assert!(p.done);
    let diag = p.diagnostics.expect("wedge carries diagnostics");
    assert!(
        diag.contains("epoch"),
        "diagnostics should name the epoch bound: {diag}"
    );
    assert!(p.max_epoch > 3);
    assert_eq!(svc.metrics().failed, 1);
    svc.shutdown();
}
