//! Batch-dynamic chaos tests (requires `--features chaos`): a crash at
//! the `graph.apply.midbatch` point must leave nothing observable (the
//! apply is all-or-nothing), dropped notifications at
//! `service.notify.drop` must be retried to exactly-once delivery, and
//! a kill/stall storm over the maintenance path must still produce
//! exact match deltas — the headline acceptance test for the standing
//! subsystem.
//!
//! Every test holds a `ChaosGuard`: the fault-point registry is
//! process-global, so chaos tests serialize within one binary.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use tdfs_core::reference_count;
use tdfs_graph::generators::barabasi_albert;
use tdfs_graph::rng::Rng;
use tdfs_graph::{DeltaCsr, EdgeBatch, GraphView};
use tdfs_query::plan::QueryPlan;
use tdfs_query::Pattern;
use tdfs_service::{DurableConfig, MatchDelta, Service, ServiceConfig, StandingRequest};
use tdfs_testkit::fault::{self, Action, ChaosScript, Trigger};

fn dynamic_service() -> Service {
    Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        plan_cache_capacity: 16,
        durability: DurableConfig {
            shard_edges: 16,
            lease_timeout: Duration::from_millis(10),
            watchdog_interval: Duration::from_millis(1),
            ..DurableConfig::default()
        },
        ..ServiceConfig::default()
    })
}

fn watch(svc: &Service, pattern: &Pattern) -> Arc<Mutex<Vec<MatchDelta>>> {
    let seen: Arc<Mutex<Vec<MatchDelta>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    svc.register_standing(StandingRequest::new("g", pattern.clone()), move |d| {
        sink.lock().unwrap().push(d.clone())
    })
    .unwrap();
    seen
}

fn random_batch(view: &DeltaCsr, rng: &mut Rng, ins: usize, del: usize) -> EdgeBatch {
    let n = view.num_vertices() as u32;
    let mut batch = EdgeBatch::new();
    for _ in 0..ins {
        batch = batch.insert(rng.gen_range_u32(0..n), rng.gen_range_u32(0..n));
    }
    let edges: Vec<(u32, u32)> = view.arcs().filter(|&(u, v)| u < v).collect();
    for _ in 0..del.min(edges.len()) {
        let (u, v) = edges[rng.gen_range(0..edges.len())];
        batch = batch.delete(u, v);
    }
    batch
}

/// A panic between delta computation and commit leaves no trace: the
/// catalog version, the match count, and the notification log are all
/// unchanged, and the very next apply of the same batch succeeds with
/// the exact delta.
#[test]
fn midbatch_crash_is_invisible_and_the_retry_lands_exactly() {
    let _chaos = ChaosScript::new()
        .on(
            "graph.apply.midbatch",
            Trigger::Nth(1),
            Action::Panic("injected midbatch crash"),
        )
        .install();
    let svc = dynamic_service();
    svc.register_graph("g", Arc::new(barabasi_albert(100, 4, 21)));
    let pattern = Pattern::clique(3);
    let plan = QueryPlan::build_with(&pattern, Default::default());
    let seen = watch(&svc, &pattern);

    let pre = svc.catalog().get("g").unwrap();
    let pre_count = reference_count(&*pre, &plan) as i64;
    let batch = EdgeBatch::new().insert(0, 70).insert(1, 71).delete(0, 1);

    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = svc.apply("g", &batch);
    }));
    assert!(crashed.is_err(), "the scripted panic must fire");
    assert_eq!(fault::injections("graph.apply.midbatch"), 1);

    // Nothing observable moved.
    let now = svc.catalog().get("g").unwrap();
    assert_eq!(
        now.version(),
        pre.version(),
        "version leaked past the crash"
    );
    assert_eq!(reference_count(&*now, &plan) as i64, pre_count);
    assert!(
        seen.lock().unwrap().is_empty(),
        "no delta for an aborted apply"
    );
    assert_eq!(svc.metrics().batches_applied, 0);

    // The retry goes through cleanly and the delta is exact.
    let report = svc.apply("g", &batch).unwrap();
    let post = svc.catalog().get("g").unwrap();
    assert_eq!(post.version(), report.version);
    let post_count = reference_count(&*post, &plan) as i64;
    let deltas = seen.lock().unwrap();
    let d = deltas.last().expect("retried apply notifies");
    assert_eq!(post_count - pre_count, d.added as i64 - d.removed as i64);
    svc.shutdown();
}

/// Dropped notifications are retried until delivered — exactly once:
/// the callback sees each version a single time even though the first
/// send attempts fail.
#[test]
fn dropped_notifications_are_retried_to_exactly_once_delivery() {
    let _chaos = ChaosScript::new()
        .on("service.notify.drop", Trigger::FirstN(2), Action::Inject)
        .install();
    let svc = dynamic_service();
    svc.register_graph("g", Arc::new(barabasi_albert(80, 3, 22)));
    let pattern = Pattern::clique(3);
    let seen = watch(&svc, &pattern);

    svc.apply("g", &EdgeBatch::new().insert(0, 40).insert(1, 41))
        .unwrap();
    svc.apply("g", &EdgeBatch::new().delete(0, 40)).unwrap();

    assert!(fault::injections("service.notify.drop") >= 2);
    let deltas = seen.lock().unwrap();
    let versions: Vec<u64> = deltas.iter().map(|d| d.version).collect();
    assert_eq!(versions, vec![1, 2], "one delivery per version, in order");
    let m = svc.metrics();
    assert!(
        m.notify_retries >= 2,
        "drops were retried: {}",
        m.notify_retries
    );
    assert_eq!(m.standing_notifications, 2);
    svc.shutdown();
}

/// The storm: maintenance jobs ride the durable queue while shards are
/// being killed and acks stalled at random, and midbatch crashes abort
/// some applies outright. Through all of it, the surviving applies'
/// deltas must telescope exactly onto full rescans of the committed
/// views — killed maintenance work resumes (lease reclaim or inline
/// fallback) to the same answer.
#[test]
fn kill_stall_storm_over_maintenance_still_yields_exact_deltas() {
    let pattern = Pattern::clique(3);
    let plan = QueryPlan::build_with(&pattern, Default::default());
    for seed in [31u64, 32, 33] {
        let _chaos = ChaosScript::new()
            .on(
                "service.worker.run",
                Trigger::Probability(0.2),
                Action::Panic("storm shard kill"),
            )
            .on(
                "service.durable.ack",
                Trigger::Probability(0.1),
                Action::Sleep { millis: 20 },
            )
            .on(
                "graph.apply.midbatch",
                Trigger::Probability(0.2),
                Action::Panic("storm midbatch crash"),
            )
            .on(
                "service.notify.drop",
                Trigger::Probability(0.3),
                Action::Inject,
            )
            .seed(seed)
            .install();
        let svc = dynamic_service();
        svc.register_graph("g", Arc::new(barabasi_albert(120, 4, seed)));
        let seen = watch(&svc, &pattern);

        let mut rng = Rng::seed_from_u64(seed * 17);
        let mut running = {
            let v = svc.catalog().get("g").unwrap();
            reference_count(&*v, &plan) as i64
        };
        let mut committed = 0u64;
        for _ in 0..8 {
            let pre = svc.catalog().get("g").unwrap();
            let batch = random_batch(&pre, &mut rng, 8, 5);
            let applied =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| svc.apply("g", &batch)));
            match applied {
                Ok(Ok(report)) => {
                    committed += 1;
                    let post = svc.catalog().get("g").unwrap();
                    assert_eq!(post.version(), report.version, "seed {seed}");
                    let post_count = reference_count(&*post, &plan) as i64;
                    let deltas = seen.lock().unwrap();
                    let d = deltas.last().expect("committed apply notifies");
                    assert_eq!(d.version, report.version, "seed {seed}");
                    running += d.added as i64 - d.removed as i64;
                    assert_eq!(
                        running, post_count,
                        "seed {seed}: delta diverged from rescan after storm"
                    );
                }
                Ok(Err(e)) => panic!("seed {seed}: unexpected apply error: {e}"),
                Err(_) => {
                    // Midbatch crash: the apply must be invisible.
                    let now = svc.catalog().get("g").unwrap();
                    assert_eq!(now.version(), pre.version(), "seed {seed}: torn apply");
                    assert_eq!(
                        reference_count(&*now, &plan) as i64,
                        running,
                        "seed {seed}: aborted apply mutated the graph"
                    );
                }
            }
        }
        let deltas = seen.lock().unwrap();
        assert_eq!(
            deltas.len() as u64,
            committed,
            "seed {seed}: exactly one delta per committed batch"
        );
        drop(deltas);
        assert_eq!(svc.metrics().batches_applied, committed, "seed {seed}");
        svc.shutdown();
    }
}
