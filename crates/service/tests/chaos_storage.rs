//! Storage-tier chaos tests (requires `--features chaos`): a crash at
//! the `catalog.write.midfile` fault point — half the payload written
//! to the staging file, nothing renamed — must be invisible to the next
//! open: the state directory still holds the previous consistent
//! version, nothing is torn, and a retry persists cleanly.
//!
//! Every test holds a `ChaosGuard`: the fault-point registry is
//! process-global, so chaos tests serialize within one binary.

use std::sync::Arc;

use tdfs_core::reference_count;
use tdfs_graph::generators::rmat;
use tdfs_graph::{DeltaCsr, EdgeBatch, GraphView};
use tdfs_query::plan::QueryPlan;
use tdfs_query::Pattern;
use tdfs_service::{ApplyError, DiskCatalog, Service, ServiceConfig};
use tdfs_testkit::fault::{self, Action, ChaosScript, Trigger};

/// Exact count over a catalog view, under the decode-cache pin scope a
/// disk-resident graph's reader contract requires.
fn exact(view: &DeltaCsr, plan: &QueryPlan) -> u64 {
    let _scope = view.pin_scope();
    reference_count(view, plan)
}

fn service_on(dir: &std::path::Path) -> Service {
    Service::open(
        dir,
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            plan_cache_capacity: 16,
            ..ServiceConfig::default()
        },
    )
    .unwrap()
    .service
}

/// Crash mid-file while persisting an apply's delta sidecar: the
/// in-memory commit stands (documented [`ApplyError::Storage`]
/// semantics don't even apply — the write never returns), and a restart
/// reopens the graph at the **previous** persisted version with its
/// bytes intact, torn staging garbage cleared. Re-applying the batch on
/// the reopened service then lands and persists.
#[test]
fn torn_sidecar_write_is_invisible_after_restart() {
    let dir = tdfs_testkit::TempDir::new("tdfs-chaos-storage").unwrap();
    let g = Arc::new(rmat(8, 6, [0.5, 0.2, 0.2, 0.1], 19));
    let pattern = Pattern::clique(3);
    let plan = QueryPlan::build_with(&pattern, Default::default());
    let batch = EdgeBatch::new().insert(0, 9).insert(1, 7).delete(0, 1);

    // Persist the graph cleanly, then arm the kill for the *next*
    // catalog write (the apply's sidecar update).
    let svc = service_on(dir.path());
    svc.register_graph_persistent("g", g.clone()).unwrap();
    let v0_count = exact(&svc.catalog().get("g").unwrap(), &plan);

    let _chaos = ChaosScript::new()
        .on(
            "catalog.write.midfile",
            Trigger::Nth(1),
            Action::Panic("injected torn write"),
        )
        .install();
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = svc.apply("g", &batch);
    }));
    assert!(crashed.is_err(), "the scripted mid-file panic must fire");
    assert_eq!(fault::injections("catalog.write.midfile"), 1);
    // Memory committed before the persist attempt…
    let live = svc.catalog().get("g").unwrap();
    assert_eq!(live.version(), 1, "the in-memory commit stands");
    let v1_count = exact(&live, &plan);
    drop(live);
    drop(svc);

    // …but disk never saw a torn byte: the staging file is garbage (and
    // cleared on open), the sidecar still decodes to version 0.
    let disk = DiskCatalog::open(dir.path()).unwrap();
    let sidecar = disk.read_delta("g").unwrap().expect("sidecar present");
    assert_eq!(sidecar.version, 0, "torn write must not reach the sidecar");
    assert!(sidecar.inserts.is_empty() && sidecar.deletes.is_empty());
    drop(disk);

    let svc = service_on(dir.path());
    let view = svc.catalog().get("g").unwrap();
    assert_eq!(view.version(), 0, "restart reopens the pre-crash version");
    assert_eq!(exact(&view, &plan), v0_count);
    assert_eq!(view.num_edges(), g.num_edges());
    drop(view);

    // The retry persists cleanly and a second restart keeps it.
    svc.apply("g", &batch).unwrap();
    assert_eq!(svc.catalog().get("g").unwrap().version(), 1);
    drop(svc);
    let svc = service_on(dir.path());
    let view = svc.catalog().get("g").unwrap();
    assert_eq!(view.version(), 1);
    assert_eq!(
        exact(&view, &plan),
        v1_count,
        "re-applied batch must reproduce the crashed apply's view"
    );
}

/// A storage failure *returned* (not crashed) from the persist step
/// surfaces as [`ApplyError::Storage`] with the in-memory commit
/// intact: here the sidecar write fails because the graphs directory
/// was removed out from under the service.
#[test]
fn failed_persist_reports_storage_error_with_the_commit_intact() {
    let dir = tdfs_testkit::TempDir::new("tdfs-chaos-storage-err").unwrap();
    let g = Arc::new(rmat(7, 5, [0.5, 0.2, 0.2, 0.1], 23));
    let svc = service_on(dir.path());
    svc.register_graph_persistent("g", g).unwrap();
    std::fs::remove_dir_all(dir.path().join("graphs")).unwrap();
    std::fs::remove_dir_all(dir.path().join("tmp")).unwrap();
    let err = svc
        .apply("g", &EdgeBatch::new().insert(0, 5))
        .expect_err("persist into a removed directory must fail");
    assert!(matches!(err, ApplyError::Storage(_)), "got {err:?}");
    assert_eq!(
        svc.catalog().get("g").unwrap().version(),
        1,
        "memory commits even when the disk write fails"
    );
}
