//! Exhaustive crash-point recovery sweep: a scripted storage workload
//! (register → apply ×2 → persist a suspended-query snapshot → compact
//! → apply) runs under the testkit's simulated-power-loss filesystem
//! ([`tdfs_testkit::SimFs`]), which records every I/O op the service
//! issues. Then, for **every** crash point × every [`CrashStyle`], the
//! post-power-loss disk image is materialized into a fresh directory
//! and `Service::open` must recover it to a consistent catalog: the
//! triangle count is exactly the pre-operation or the post-operation
//! count of the interrupted step — never a hybrid — any resumed
//! suspended query lands on its exact count, and `tdfsck` reports zero
//! errors afterward.

use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;

use tdfs_core::{host_filter_edges, MatcherConfig};
use tdfs_graph::generators::rmat;
use tdfs_graph::rng::Rng;
use tdfs_graph::EdgeBatch;
use tdfs_query::plan::QueryPlan;
use tdfs_query::Pattern;
use tdfs_service::snapshot::{self, QuerySnapshot};
use tdfs_service::{fsck, DiskCatalog, DurableConfig, QueryRequest, Service, ServiceConfig, Shard};
use tdfs_testkit::{SimFs, TempDir, CRASH_STYLES};

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        plan_cache_capacity: 8,
        durability: DurableConfig {
            shard_edges: 64,
            ..DurableConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// Exact triangle count through the service, or `None` when the graph
/// is not in the recovered catalog (a crash before its install
/// committed).
fn triangles(svc: &Service) -> Option<u64> {
    svc.catalog().get("g")?;
    let out = svc
        .submit(QueryRequest::new("g", Pattern::clique(3)))
        .expect("submit over recovered graph")
        .wait();
    Some(out.result.expect("query over recovered graph").matches)
}

/// The recorded workload: each committed step's op-log boundary and the
/// catalog state (`None` = graph absent, `Some(count)` = exact triangle
/// count) that holds from that boundary until the next one.
struct Workload {
    sim: SimFs,
    states: Vec<(usize, Option<u64>)>,
    /// Exact count any resumed suspended query must produce.
    snap_want: u64,
}

/// States bracketing crash point `n`: the last committed state and the
/// state the interrupted step was moving to.
fn bracket(states: &[(usize, Option<u64>)], n: usize) -> (Option<u64>, Option<u64>) {
    let i = states.partition_point(|&(m, _)| m <= n) - 1;
    let prev = states[i].1;
    let next = states.get(i + 1).map_or(prev, |&(_, s)| s);
    (prev, next)
}

fn deterministic_batch(n: u32, rng: &mut Rng, ins: usize, del: usize) -> EdgeBatch {
    let mut batch = EdgeBatch::new();
    for _ in 0..ins {
        batch = batch.insert(rng.gen_range_u32(0..n), rng.gen_range_u32(0..n));
    }
    for _ in 0..del {
        batch = batch.delete(rng.gen_range_u32(0..n), rng.gen_range_u32(0..n));
    }
    batch
}

/// Runs the scripted workload to completion under `sim`, recording
/// every I/O op and the exact per-step counts.
fn run_workload(root: &Path) -> Workload {
    let sim = SimFs::new(root).unwrap();
    let vfs: Arc<dyn tdfs_graph::vfs::Vfs> = Arc::new(sim.clone());
    let g = Arc::new(rmat(7, 6, [0.45, 0.22, 0.22, 0.11], 11));
    let n = g.num_vertices() as u32;
    let mut rng = Rng::seed_from_u64(0xC2A54);
    // Until the install commits, the consistent state is "no graph".
    let mut states = vec![(0usize, None)];

    let opened = Service::open_with_vfs(root, config(), vfs.clone()).unwrap();
    let svc = opened.service;
    states.push((sim.marker("opened"), None));

    svc.register_graph_persistent("g", g).unwrap();
    states.push((sim.marker("registered"), triangles(&svc)));

    svc.apply("g", &deterministic_batch(n, &mut rng, 40, 10))
        .unwrap();
    states.push((sim.marker("batch1"), triangles(&svc)));

    svc.apply("g", &deterministic_batch(n, &mut rng, 40, 10))
        .unwrap();
    let c2 = triangles(&svc).unwrap();
    states.push((sim.marker("batch2"), Some(c2)));

    // Persist a zero-progress suspended-query checkpoint against the
    // live version-2 view (the deterministic stand-in for a crash right
    // after `suspend_to_disk`). Zero progress means the resumed run
    // recounts every shard, so its exact count is immune to
    // edge-*order* differences between the overlay and the compacted
    // container it may be resumed against.
    let pattern = Pattern::clique(3);
    let qcfg = MatcherConfig::tdfs().with_warps(2);
    let plan = QueryPlan::build_with(&pattern, qcfg.plan);
    let view = svc.catalog().get("g").unwrap();
    let edge_count = {
        let _pin = view.pin_scope();
        host_filter_edges(&*view, &plan).len() as u64
    };
    drop(view);
    let snap = QuerySnapshot {
        graph: "g".into(),
        graph_version: 2,
        pattern,
        config: qcfg,
        edge_count,
        matches: 0,
        emitted: 0,
        tasks_acked: 0,
        resumes: 0,
        next_task_id: 1,
        acked: vec![],
        pending: vec![(
            0,
            0,
            Shard {
                start: 0,
                end: edge_count as u32,
            },
        )],
    };
    DiskCatalog::open_with(root, vfs)
        .unwrap()
        .write_snapshot(9, &snapshot::encode(&snap))
        .unwrap();
    states.push((sim.marker("snapshot"), Some(c2)));

    assert_eq!(svc.compact_graph("g").unwrap(), 2);
    states.push((sim.marker("compacted"), Some(c2)));

    svc.apply("g", &deterministic_batch(n, &mut rng, 40, 10))
        .unwrap();
    states.push((sim.marker("batch3"), triangles(&svc)));

    Workload {
        sim,
        states,
        snap_want: c2,
    }
}

/// Opens one materialized crash image and asserts full consistency.
fn check_image(dir: &Path, context: &str, allowed: &[Option<u64>], snap_want: u64) {
    let opened = Service::open(dir, config())
        .unwrap_or_else(|e| panic!("{context}: recovery open failed: {e}"));
    let got = triangles(&opened.service);
    assert!(
        allowed.contains(&got),
        "{context}: hybrid state: recovered count {got:?}, allowed {allowed:?}"
    );
    for handle in opened.resumed {
        let out = handle.wait();
        assert_eq!(
            out.result.expect("resumed query failed").matches,
            snap_want,
            "{context}: resumed suspended query diverged"
        );
    }
    drop(opened.service);
    let report = fsck(dir, false).unwrap_or_else(|e| panic!("{context}: fsck failed: {e}"));
    assert_eq!(
        report.errors(),
        0,
        "{context}: tdfsck found errors after recovery:\n{report}"
    );
}

/// The tentpole sweep: every crash point × every crash style recovers
/// to exactly a pre- or post-operation catalog, resumes exactly, and
/// passes `tdfsck` with zero errors.
#[test]
fn every_crash_point_in_every_style_recovers_to_a_consistent_catalog() {
    let tmp = TempDir::new("tdfs-crashsim-sweep").unwrap();
    let live = tmp.path().join("live");
    let w = run_workload(&live);
    let total = w.sim.op_count();
    assert!(
        total >= 60,
        "workload too small for a meaningful sweep: {total} ops"
    );

    let mut seen: HashSet<(u64, Option<u64>, Option<u64>)> = HashSet::new();
    let mut checked = 0usize;
    for n in 0..=total {
        let (prev, next) = bracket(&w.states, n);
        for style in CRASH_STYLES {
            let image = w.sim.image(n, style);
            // Adjacent crash points frequently share identical images
            // (an op that changed nothing durable); re-checking them
            // proves nothing new.
            if !seen.insert((image.digest(), prev, next)) {
                continue;
            }
            let dir = tmp.path().join(format!("cp{n}-{style:?}"));
            image.write_to(&dir).unwrap();
            let context = format!(
                "crash point {n}/{total} ({}) style {style:?}",
                w.sim.describe(n)
            );
            check_image(&dir, &context, &[prev, next], w.snap_want);
            std::fs::remove_dir_all(&dir).unwrap();
            checked += 1;
        }
    }
    assert!(
        checked >= total / 2,
        "sweep degenerated: only {checked} unique images across {total} crash points"
    );
}

/// Satellite property: seeded *random* workloads crashed at sampled
/// random points never yield a directory `Service::open` cannot read —
/// and never one `tdfsck` finds errors in after recovery.
#[test]
fn random_crash_points_never_yield_an_unreadable_directory() {
    for seed in [0xA11CEu64, 0xB0B5] {
        let tmp = TempDir::new("tdfs-crashsim-prop").unwrap();
        let live = tmp.path().join("live");
        let sim = SimFs::new(&live).unwrap();
        let vfs: Arc<dyn tdfs_graph::vfs::Vfs> = Arc::new(sim.clone());
        let mut rng = Rng::seed_from_u64(seed);

        let g = Arc::new(rmat(7, 6, [0.5, 0.2, 0.2, 0.1], seed));
        let n = g.num_vertices() as u32;
        let opened = Service::open_with_vfs(&live, config(), vfs).unwrap();
        let svc = opened.service;
        svc.register_graph_persistent("g", g).unwrap();
        let batches = 2 + (rng.gen_range_u32(0..3) as usize);
        for i in 0..batches {
            let ins = 10 + rng.gen_range_u32(0..40) as usize;
            let del = rng.gen_range_u32(0..10) as usize;
            svc.apply("g", &deterministic_batch(n, &mut rng, ins, del))
                .unwrap();
            if i == batches / 2 {
                svc.compact_graph("g").unwrap();
            }
        }
        drop(svc);

        let total = sim.op_count();
        for _ in 0..30 {
            let point = rng.gen_range_u32(0..(total as u32 + 1)) as usize;
            let style = CRASH_STYLES[rng.gen_range_u32(0..CRASH_STYLES.len() as u32) as usize];
            let dir = tmp.path().join(format!("s{seed:x}-p{point}"));
            sim.image(point, style).write_to(&dir).unwrap();
            let context = format!(
                "seed {seed:#x} crash point {point}/{total} ({}) style {style:?}",
                sim.describe(point)
            );
            let opened = Service::open(&dir, config())
                .unwrap_or_else(|e| panic!("{context}: recovery open failed: {e}"));
            drop(opened.service);
            let report = fsck(&dir, false).unwrap();
            assert_eq!(
                report.errors(),
                0,
                "{context}: tdfsck errors after recovery:\n{report}"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
