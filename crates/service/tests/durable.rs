//! Durable-execution integration tests (no chaos feature needed):
//! exactness of leased-shard counting across every engine, checkpoint /
//! resume equivalence with the uninterrupted run, recovery of poisonous
//! client sinks, and the resume-validation error paths.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tdfs_core::{reference_count, MatchSink, MatcherConfig};
use tdfs_graph::generators::barabasi_albert;
use tdfs_graph::CsrGraph;
use tdfs_query::plan::QueryPlan;
use tdfs_query::Pattern;
use tdfs_service::snapshot::{self, QuerySnapshot};
use tdfs_service::{
    DurableConfig, QueryRequest, ResumeError, Service, ServiceConfig, Shard, SnapshotError,
};

fn engines() -> Vec<(&'static str, MatcherConfig)> {
    vec![
        ("tdfs", MatcherConfig::tdfs().with_warps(2)),
        ("no_steal", MatcherConfig::no_steal().with_warps(2)),
        ("stmatch", MatcherConfig::stmatch_like().with_warps(2)),
        ("egsm", MatcherConfig::egsm_like().with_warps(2)),
        ("pbe", MatcherConfig::pbe_like().with_warps(2)),
    ]
}

fn patterns() -> Vec<(&'static str, Pattern)> {
    vec![
        ("k3", Pattern::clique(3)),
        ("k4", Pattern::clique(4)),
        // The house: a 4-cycle with a roof triangle.
        (
            "house",
            Pattern::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)]),
        ),
    ]
}

fn durable_service(shard_edges: usize) -> Service {
    Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        plan_cache_capacity: 16,
        durability: DurableConfig {
            shard_edges,
            ..DurableConfig::default()
        },
        ..ServiceConfig::default()
    })
}

/// Fault-free durable runs count exactly, for every engine and pattern,
/// with the fine sharding the recovery machinery operates on.
#[test]
fn durable_counts_agree_with_reference_for_every_engine() {
    let g = Arc::new(barabasi_albert(200, 4, 41));
    let svc = durable_service(16);
    svc.register_graph("ba", g.clone());
    for (pname, pattern) in patterns() {
        for (ename, config) in engines() {
            // Each preset carries its own plan options (symmetry
            // breaking differs), so the reference is per engine.
            let want = reference_count(&g, &QueryPlan::build_with(&pattern, config.plan));
            let out = svc
                .submit(QueryRequest::new("ba", pattern.clone()).with_config(config))
                .unwrap()
                .wait();
            let r = out.result.expect("durable run failed");
            assert_eq!(r.matches, want, "{ename}/{pname}: wrong durable count");
            assert!(!r.stats.cancelled);
        }
    }
    let m = svc.metrics();
    assert_eq!(m.durable_queries, 15);
    assert_eq!(m.leases_fenced, 0, "no faults, no zombies");
    assert_eq!(
        m.leases_granted, m.tasks_acked,
        "fault-free: every grant acks"
    );
    assert!(m.tasks_acked > 15, "sharding actually happened");
}

/// A hand-built mid-query checkpoint — first shard acked with its exact
/// partial count, the rest pending — resumes to the uninterrupted count
/// on every engine. This is the deterministic core of resume
/// correctness: the resumed run starts from the published partial sum
/// and re-executes only unfinished shards.
#[test]
fn resume_from_mid_query_snapshot_matches_uninterrupted_count() {
    let g = Arc::new(barabasi_albert(200, 4, 42));
    let svc = durable_service(64);
    svc.register_graph("ba", g.clone());
    for (pname, pattern) in patterns() {
        for (ename, config) in engines() {
            let plan = QueryPlan::build_with(&pattern, config.plan);
            let want = reference_count(&g, &plan);
            let edges = tdfs_core::host_filter_edges(&g, &plan);
            let split = edges.len() / 3;
            let head =
                tdfs_core::match_plan_on_edges(&g, &plan, &config, edges[..split].to_vec(), None)
                    .unwrap()
                    .matches;
            let snap = QuerySnapshot {
                graph: "ba".into(),
                graph_version: 0,
                pattern: pattern.clone(),
                config: config.clone(),
                edge_count: edges.len() as u64,
                matches: head,
                emitted: 0,
                tasks_acked: 1,
                resumes: 0,
                next_task_id: 2,
                acked: vec![0],
                pending: vec![(
                    1,
                    0,
                    Shard {
                        start: split as u32,
                        end: edges.len() as u32,
                    },
                )],
            };
            let out = svc.resume(&snapshot::encode(&snap)).unwrap().wait();
            let r = out.result.expect("resumed run failed");
            assert_eq!(r.matches, want, "{ename}/{pname}: resume lost counts");
        }
    }
    assert_eq!(svc.metrics().resumes, 15);
}

/// Snapshot a *live* query mid-run, cancel the original, resume the
/// image: the resumed run must land on the exact uninterrupted count —
/// the acked prefix carries over, in-flight shards (demoted in the
/// image) re-execute.
#[test]
fn live_snapshot_then_cancel_then_resume_recovers_the_exact_count() {
    let g = Arc::new(barabasi_albert(1200, 8, 43));
    let svc = durable_service(8);
    svc.register_graph("ba", g.clone());
    let pattern = Pattern::clique(4);
    let want = reference_count(&g, &QueryPlan::build_with(&pattern, Default::default()));
    let h = svc
        .submit(QueryRequest::new("ba", pattern).with_config(MatcherConfig::tdfs().with_warps(2)))
        .unwrap();
    // Let some shards publish, then checkpoint whatever state exists.
    // `NotStarted` while queued and `UnknownQuery` in the tiny window
    // between dequeue and durable-state registration are both transient.
    let id = h.id();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let bytes = loop {
        match svc.snapshot(id) {
            Ok(b) => break b,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) => panic!("snapshot failed: {e}"),
        }
    };
    h.cancel();
    let _ = h.wait();
    let decoded = snapshot::decode(&bytes).unwrap();
    assert_eq!(decoded.graph, "ba");
    assert!(
        decoded.matches <= want,
        "partial count exceeds the full count"
    );
    let out = svc.resume(&bytes).unwrap().wait();
    assert_eq!(out.result.unwrap().matches, want);
    let p = svc
        .progress(out.query_id)
        .expect("resumed query registered");
    assert!(p.done);
    assert_eq!(p.resumes, 1);
    assert_eq!(p.matches, want);
}

/// Snapshots survive query completion (bounded retention): a finished
/// query still serializes, and resuming the finished image is a no-op
/// run returning the same count.
#[test]
fn completed_query_snapshot_resumes_to_the_same_count() {
    let g = Arc::new(barabasi_albert(150, 4, 44));
    let svc = durable_service(32);
    svc.register_graph("ba", g.clone());
    let pattern = Pattern::clique(3);
    let out = svc.submit(QueryRequest::new("ba", pattern)).unwrap().wait();
    let want = out.result.unwrap().matches;
    let bytes = svc.snapshot(out.query_id).expect("completed yet retained");
    let snap = snapshot::decode(&bytes).unwrap();
    assert_eq!(snap.matches, want);
    assert!(snap.pending.is_empty(), "nothing unfinished");
    let resumed = svc.resume(&bytes).unwrap().wait();
    assert_eq!(resumed.result.unwrap().matches, want);
}

/// A client sink that panics is a recovered per-shard fault on the
/// durable path: the query completes with the exact count, the lease is
/// reclaimed, and no service worker dies.
struct PanicOnceSink(AtomicBool);

impl MatchSink for PanicOnceSink {
    fn emit(&self, _m: &[u32]) {
        if self.0.swap(false, Ordering::SeqCst) {
            panic!("sink panic (injected by test)");
        }
    }
}

#[test]
fn poisonous_client_sink_is_recovered_per_shard() {
    let g = Arc::new(barabasi_albert(200, 4, 45));
    let svc = durable_service(16);
    svc.register_graph("ba", g.clone());
    let pattern = Pattern::clique(3);
    let want = reference_count(&g, &QueryPlan::build_with(&pattern, Default::default()));
    let out = svc
        .submit(
            QueryRequest::new("ba", pattern)
                .with_sink(Arc::new(PanicOnceSink(AtomicBool::new(true)))),
        )
        .unwrap()
        .wait();
    assert_eq!(out.result.expect("panic must be recovered").matches, want);
    let m = svc.metrics();
    assert!(m.leases_reclaimed >= 1, "the poisoned shard was reclaimed");
    assert_eq!(m.worker_panics, 0, "no service worker died");
    assert_eq!(m.failed, 0);
}

/// Resume validation: garbage bytes, unknown graphs, and a graph whose
/// admitted-edge space disagrees with the snapshot are all rejected
/// before admission.
#[test]
fn resume_rejects_invalid_and_mismatched_snapshots() {
    let g = Arc::new(barabasi_albert(100, 3, 46));
    let svc = durable_service(32);
    svc.register_graph("ba", g.clone());
    let out = svc
        .submit(QueryRequest::new("ba", Pattern::clique(3)))
        .unwrap()
        .wait();
    let bytes = svc.snapshot(out.query_id).unwrap();

    assert!(matches!(
        svc.resume(b"not a snapshot"),
        Err(ResumeError::Decode(_))
    ));

    // Unregister the graph: the snapshot now names nothing.
    svc.unregister_graph("ba");
    assert!(matches!(
        svc.resume(&bytes),
        Err(ResumeError::UnknownGraph(_))
    ));

    // Re-register a *different* graph under the same name: the admitted
    // edge list no longer matches the snapshot's shard space.
    let other: Arc<CsrGraph> = Arc::new(barabasi_albert(120, 4, 47));
    svc.register_graph("ba", other);
    assert!(matches!(
        svc.resume(&bytes),
        Err(ResumeError::GraphMismatch { .. })
    ));

    assert!(matches!(
        svc.snapshot(9999),
        Err(SnapshotError::UnknownQuery(9999))
    ));
}
