//! Golden corrupt-state-directory fixtures for `tdfsck`: each test
//! builds a healthy state directory, inflicts one specific class of
//! damage (torn manifest, orphan container, stale intent journal,
//! missing delta sidecar), and asserts that check-only mode classifies
//! it with the exact [`FindingKind`] — and that repair mode remediates
//! it into a directory a strict `Service::open` accepts, without ever
//! deleting anything (corrupt files land in `quarantine/`).

use std::sync::Arc;

use tdfs_graph::generators::rmat;
use tdfs_graph::EdgeBatch;
use tdfs_query::Pattern;
use tdfs_service::{
    fsck, DiskCatalog, FindingKind, Intent, QueryRequest, Service, ServiceConfig, Severity,
};
use tdfs_testkit::TempDir;

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        plan_cache_capacity: 8,
        ..ServiceConfig::default()
    }
}

/// A healthy one-graph state directory: `g` registered persistently and
/// one batch applied (version 1, non-empty sidecar). Returns the exact
/// triangle counts at version 1 and at version 0 (the container base).
fn seeded_dir(tag: &str) -> (TempDir, u64, u64) {
    let tmp = TempDir::new(tag).unwrap();
    let g = Arc::new(rmat(7, 6, [0.45, 0.22, 0.22, 0.11], 7));
    let n = g.num_vertices() as u32;
    let opened = Service::open(tmp.path(), config()).unwrap();
    let svc = opened.service;
    svc.register_graph_persistent("g", g).unwrap();
    let base = triangles(&svc);
    let mut batch = EdgeBatch::new();
    for i in 0..20u32 {
        batch = batch.insert(i % n, (i * 7 + 1) % n);
    }
    svc.apply("g", &batch).unwrap();
    let at_v1 = triangles(&svc);
    (tmp, at_v1, base)
}

fn triangles(svc: &Service) -> u64 {
    svc.submit(QueryRequest::new("g", Pattern::clique(3)))
        .unwrap()
        .wait()
        .result
        .unwrap()
        .matches
}

fn has(report: &tdfs_service::FsckReport, kind: &FindingKind, severity: Severity) -> bool {
    report
        .findings
        .iter()
        .any(|f| f.kind == *kind && f.severity == severity)
}

/// A manifest torn mid-write (truncated to half its bytes) is an Error;
/// repair quarantines it and rebuilds the list from the containers that
/// verify, so the graph — and its intact sidecar — survive untouched.
#[test]
fn torn_manifest_is_rebuilt_from_verifying_containers() {
    let (tmp, want, _) = seeded_dir("tdfs-fsck-manifest");
    let manifest = tmp.path().join("MANIFEST");
    let bytes = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &bytes[..bytes.len() / 2]).unwrap();

    let check = fsck(tmp.path(), false).unwrap();
    assert!(
        has(&check, &FindingKind::CorruptManifest, Severity::Error),
        "torn manifest must be classified: {check}"
    );
    assert!(check.errors() >= 1);

    let repair = fsck(tmp.path(), true).unwrap();
    assert!(has(&repair, &FindingKind::CorruptManifest, Severity::Error));
    let after = fsck(tmp.path(), false).unwrap();
    assert!(
        after.is_clean(),
        "repair must leave a clean directory:\n{after}"
    );
    // The torn original is evidence, not garbage.
    assert!(
        std::fs::read_dir(tmp.path().join("quarantine"))
            .unwrap()
            .count()
            >= 1,
        "torn manifest must be quarantined, not deleted"
    );

    let opened = Service::open(tmp.path(), config()).unwrap();
    let view = opened.service.catalog().get("g").expect("graph survives");
    assert_eq!(view.version(), 1, "sidecar must survive a manifest rebuild");
    assert_eq!(triangles(&opened.service), want);
}

/// A verifying container nothing references is an orphan: flagged as a
/// warning, quarantined (not deleted) by repair, and the referenced
/// graph is untouched.
#[test]
fn orphan_container_is_quarantined() {
    let (tmp, want, _) = seeded_dir("tdfs-fsck-orphan");
    let graphs = tmp.path().join("graphs");
    std::fs::copy(graphs.join("g.tdfsgrph"), graphs.join("orphan.tdfsgrph")).unwrap();

    let check = fsck(tmp.path(), false).unwrap();
    assert!(
        has(&check, &FindingKind::OrphanFile, Severity::Warning),
        "orphan container must be classified: {check}"
    );
    assert_eq!(check.errors(), 0, "an orphan is not an error: {check}");

    fsck(tmp.path(), true).unwrap();
    assert!(!graphs.join("orphan.tdfsgrph").exists());
    assert!(
        tmp.path()
            .join("quarantine")
            .join("orphan.tdfsgrph")
            .exists(),
        "orphan must be moved to quarantine, not deleted"
    );
    let after = fsck(tmp.path(), false).unwrap();
    assert!(after.is_clean(), "{after}");
    assert_eq!(
        triangles(&Service::open(tmp.path(), config()).unwrap().service),
        want
    );
}

/// A stale intent journal (the only trace of a transition whose process
/// died before its commit point) is a warning; repair applies the
/// journal recovery — here a roll-back, since no container matches the
/// intent — and clears the slot.
#[test]
fn stale_intent_journal_is_recovered_and_cleared() {
    let (tmp, want, _) = seeded_dir("tdfs-fsck-intent");
    let intent = Intent::InstallGraph {
        name: "phantom".into(),
        version: 3,
        container_len: 123,
        header_crc: 0xDEAD_BEEF,
    };
    let journal = tmp.path().join("JOURNAL");
    std::fs::write(&journal, intent.encode()).unwrap();

    let check = fsck(tmp.path(), false).unwrap();
    assert!(
        has(&check, &FindingKind::StaleIntent, Severity::Warning),
        "stale intent must be classified: {check}"
    );
    assert!(
        journal.exists(),
        "check-only mode must not touch the journal"
    );

    fsck(tmp.path(), true).unwrap();
    assert!(!journal.exists(), "repair must clear the recovered journal");
    let after = fsck(tmp.path(), false).unwrap();
    assert!(after.is_clean(), "{after}");
    assert_eq!(
        triangles(&Service::open(tmp.path(), config()).unwrap().service),
        want
    );
}

/// A journal that fails CRC validation is corruption (Error), not a
/// stale intent: repair quarantines it rather than acting on it.
#[test]
fn corrupt_journal_is_quarantined_not_replayed() {
    let (tmp, want, _) = seeded_dir("tdfs-fsck-badjournal");
    let journal = tmp.path().join("JOURNAL");
    let mut bytes = Intent::PutSnapshot { id: 7 }.encode();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF; // break the CRC trailer
    std::fs::write(&journal, &bytes).unwrap();

    let check = fsck(tmp.path(), false).unwrap();
    assert!(
        has(&check, &FindingKind::CorruptJournal, Severity::Error),
        "corrupt journal must be an error: {check}"
    );

    fsck(tmp.path(), true).unwrap();
    assert!(!journal.exists());
    assert!(tmp.path().join("quarantine").join("JOURNAL").exists());
    let after = fsck(tmp.path(), false).unwrap();
    assert!(after.is_clean(), "{after}");
    assert_eq!(
        triangles(&Service::open(tmp.path(), config()).unwrap().service),
        want
    );
}

/// A missing sidecar demotes the graph to version 0 — explicitly: a
/// warning in check mode, an empty version-0 sidecar written by repair,
/// and the reopened graph serves the container base exactly.
#[test]
fn missing_sidecar_resets_to_the_container_base() {
    let (tmp, _, base_want) = seeded_dir("tdfs-fsck-sidecar");
    std::fs::remove_file(tmp.path().join("graphs").join("g.delta")).unwrap();

    let check = fsck(tmp.path(), false).unwrap();
    assert!(
        has(&check, &FindingKind::MissingSidecar, Severity::Warning),
        "missing sidecar must be classified: {check}"
    );

    fsck(tmp.path(), true).unwrap();
    let after = fsck(tmp.path(), false).unwrap();
    assert!(after.is_clean(), "{after}");

    let opened = Service::open(tmp.path(), config()).unwrap();
    let view = opened.service.catalog().get("g").expect("graph survives");
    assert_eq!(view.version(), 0, "graph reloads at the container base");
    assert_eq!(triangles(&opened.service), base_want);
}

/// `DiskCatalog` round-trips every intent through the public journal
/// encoding, and a fixture journal written with [`Intent::encode`] is
/// read back verbatim by the catalog's own recovery reader.
#[test]
fn fixture_journals_match_the_catalog_reader() {
    let (tmp, _, _) = seeded_dir("tdfs-fsck-roundtrip");
    let intent = Intent::ApplyDelta {
        name: "g".into(),
        version: 42,
    };
    std::fs::write(tmp.path().join("JOURNAL"), intent.encode()).unwrap();
    let cat = DiskCatalog::open(tmp.path()).unwrap();
    // `open` itself recovers: ApplyDelta's sidecar write is atomic, so
    // the journal is simply cleared.
    assert!(!tmp.path().join("JOURNAL").exists());
    assert!(cat.read_journal().unwrap().is_none());
}
