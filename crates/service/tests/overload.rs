//! Overload-governor integration tests: storm survival under a tiny
//! memory budget, suspend/resume exactness across every engine,
//! deadline shedding before execution, cost-aware admission, sojourn
//! shedding, brownout, and metrics-snapshot consistency.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tdfs_core::{reference_count, EngineError, MatchSink, MatcherConfig};
use tdfs_graph::generators::barabasi_albert;
use tdfs_query::plan::QueryPlan;
use tdfs_query::Pattern;
use tdfs_service::{
    BreakerConfig, BreakerState, DurableConfig, GovernorConfig, Priority, QueryRequest, Rejected,
    Service, ServiceConfig, ShedPolicy,
};

fn engines() -> Vec<(&'static str, MatcherConfig)> {
    vec![
        ("tdfs", MatcherConfig::tdfs().with_warps(2)),
        ("no_steal", MatcherConfig::no_steal().with_warps(2)),
        ("stmatch", MatcherConfig::stmatch_like().with_warps(2)),
        ("egsm", MatcherConfig::egsm_like().with_warps(2)),
        ("pbe", MatcherConfig::pbe_like().with_warps(2)),
    ]
}

/// A sink that signals when the engine first emits, then blocks until
/// released — pins a worker deterministically.
struct BlockingSink {
    entered: Arc<(Mutex<bool>, Condvar)>,
    release: Arc<(Mutex<bool>, Condvar)>,
}

impl MatchSink for BlockingSink {
    fn emit(&self, _m: &[u32]) {
        {
            let (m, c) = &*self.entered;
            *m.lock().unwrap() = true;
            c.notify_all();
        }
        let (m, c) = &*self.release;
        let mut g = m.lock().unwrap();
        while !*g {
            g = c.wait(g).unwrap();
        }
    }
}

fn wait_flag(pair: &(Mutex<bool>, Condvar)) {
    let (m, c) = pair;
    let mut g = m.lock().unwrap();
    while !*g {
        g = c.wait(g).unwrap();
    }
}

fn raise_flag(pair: &(Mutex<bool>, Condvar)) {
    let (m, c) = pair;
    *m.lock().unwrap() = true;
    c.notify_all();
}

fn k5() -> Arc<tdfs_graph::CsrGraph> {
    let mut b = tdfs_graph::GraphBuilder::new();
    for u in 0..5 {
        for v in (u + 1)..5 {
            b.push_edge(u, v);
        }
    }
    Arc::new(b.build())
}

/// The tentpole stress test: 2× queue capacity of concurrent clients
/// against a deliberately tiny service memory budget, with sojourn
/// shedding armed and a live metrics sampler. Every accepted query must
/// terminate with a complete result, an exact partial, or a typed shed;
/// nothing may fail, panic, or leak budget pages — and every `Ok`
/// outcome must carry the *exact* count despite suspends and spills.
#[test]
fn storm_terminates_every_accepted_query_and_leaks_nothing() {
    let g = Arc::new(barabasi_albert(300, 5, 7));
    let pattern = Pattern::clique(4);
    let config = MatcherConfig::tdfs().with_warps(2);
    let want = reference_count(&g, &QueryPlan::build_with(&pattern, config.plan));

    const QUEUE_CAP: usize = 8;
    let svc = Arc::new(Service::new(ServiceConfig {
        workers: 3,
        queue_capacity: QUEUE_CAP,
        plan_cache_capacity: 8,
        durability: DurableConfig {
            shard_edges: 32,
            ..DurableConfig::default()
        },
        governor: GovernorConfig {
            memory_budget_pages: Some(16),
            suspend_high_water: 0.75,
            resume_low_water: 0.25,
            shed_policy: ShedPolicy::Sojourn {
                target: Duration::from_millis(20),
            },
            tick: Duration::from_millis(1),
            ..GovernorConfig::default()
        },
        ..ServiceConfig::default()
    }));
    svc.register_graph("ba", g);

    // Live sampler: every metrics snapshot must be internally
    // consistent, even taken mid-storm.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let svc = svc.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let m = svc.metrics();
                let finished = m.completed + m.deadline_expired + m.failed + m.queries_shed;
                assert!(
                    finished <= m.admitted,
                    "finished {finished} > admitted {}",
                    m.admitted
                );
                assert!(
                    m.partials_served <= m.deadline_expired + m.queries_shed,
                    "partials {} without matching early endings",
                    m.partials_served
                );
                assert!(m.cancelled <= m.completed);
                std::thread::sleep(Duration::from_micros(500));
            }
        })
    };

    let clients = QUEUE_CAP * 2;
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let svc = svc.clone();
            let pattern = pattern.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                let mut req = QueryRequest::new("ba", pattern).with_config(config);
                if i % 2 == 0 {
                    req = req.with_deadline(Duration::from_millis(400));
                }
                if i % 3 == 0 {
                    req = req.with_priority(Priority::Low);
                }
                svc.submit(req).map(|h| h.wait())
            })
        })
        .collect();

    let mut accepted = 0u64;
    let mut ok = 0u64;
    for h in handles {
        match h.join().expect("client thread panicked") {
            Ok(out) => {
                accepted += 1;
                match &out.result {
                    Ok(r) => {
                        ok += 1;
                        assert!(!r.stats.cancelled, "nobody cancelled");
                        assert_eq!(r.matches, want, "suspend/spill storm broke exactness");
                        assert!(out.partial.is_none());
                    }
                    Err(EngineError::TimeLimit) | Err(EngineError::Shed) => {
                        if let Some(p) = &out.partial {
                            assert!(p.lower_bound <= want, "partial bound exceeds the answer");
                            assert!(p.shards_done <= p.shards_total);
                        }
                    }
                    Err(e) => panic!("query died with untyped error {e}"),
                }
            }
            Err(r) => assert!(
                matches!(r, Rejected::QueueFull),
                "unexpected rejection {r:?}"
            ),
        }
    }
    assert!(ok >= 1, "storm completed nothing");

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    sampler.join().expect("metrics sampler found inconsistency");

    let m = svc.metrics();
    assert_eq!(m.admitted, accepted);
    assert_eq!(
        m.completed + m.deadline_expired + m.failed + m.queries_shed,
        accepted,
        "an accepted query never terminated"
    );
    assert_eq!(m.failed, 0, "no untyped failures under overload");
    assert_eq!(
        m.budget_in_use_pages, 0,
        "budget pages leaked after all queries ended"
    );
    assert!(m.budget_peak_pages > 0, "the budget was never exercised");
    svc.shutdown();
}

/// Manual snapshot-suspension mid-run, then resume-in-place: the final
/// count is exact for every engine. Suspension revokes in-flight shard
/// leases whose counts were never published, so parking and resuming a
/// query cannot change its answer.
#[test]
fn suspend_then_unsuspend_preserves_exact_counts_for_every_engine() {
    let g = Arc::new(barabasi_albert(600, 5, 11));
    for (ename, config) in engines() {
        let svc = Service::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            plan_cache_capacity: 8,
            durability: DurableConfig {
                shard_edges: 4,
                ..DurableConfig::default()
            },
            ..ServiceConfig::default()
        });
        svc.register_graph("ba", g.clone());
        let pattern = Pattern::clique(4);
        let want = reference_count(&g, &QueryPlan::build_with(&pattern, config.plan));
        let h = svc
            .submit(QueryRequest::new("ba", pattern).with_config(config))
            .unwrap();
        let id = h.id();
        // `NotStarted` while queued and `UnknownQuery` in the tiny
        // window before durable-state registration are transient.
        let deadline = Instant::now() + Duration::from_secs(10);
        let bytes = loop {
            match svc.suspend(id) {
                Ok(b) => break b,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_micros(200))
                }
                Err(e) => panic!("{ename}: suspend failed: {e}"),
            }
        };
        // The checkpoint taken at suspension is a valid recovery
        // artifact with a partial count bounded by the answer.
        let snap = tdfs_service::snapshot::decode(&bytes).expect("suspension checkpoint decodes");
        assert!(snap.matches <= want, "{ename}: checkpoint overcounts");
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            svc.unsuspend(id) || svc.progress(id).is_some_and(|p| p.done),
            "{ename}: suspended query neither resumable nor finished"
        );
        let out = h.wait();
        assert_eq!(
            out.result.expect("suspended run failed").matches,
            want,
            "{ename}: suspend/resume lost counts"
        );
        let m = svc.metrics();
        assert_eq!(m.suspends, 1);
        assert!(m.snapshots_taken >= 1, "suspension checkpointed");
        svc.shutdown();
    }
}

/// Regression: a query whose deadline expired while queued fails with
/// `TimeLimit` *before* any execution work — discriminated by the plan
/// cache, which must never see the expired query's pattern.
#[test]
fn deadline_expired_in_queue_never_builds_a_plan() {
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        plan_cache_capacity: 8,
        ..ServiceConfig::default()
    });
    svc.register_graph("k5", k5());
    let entered = Arc::new((Mutex::new(false), Condvar::new()));
    let release = Arc::new((Mutex::new(false), Condvar::new()));
    let blocker = svc
        .submit(
            QueryRequest::new("k5", Pattern::clique(3))
                .with_sink(Arc::new(BlockingSink {
                    entered: entered.clone(),
                    release: release.clone(),
                }))
                .with_durable(false),
        )
        .unwrap();
    wait_flag(&entered);
    // Queued behind the pinned worker with an already-expired deadline;
    // its pattern (K4) shares no plan with the blocker (K3).
    let doomed = svc
        .submit(QueryRequest::new("k5", Pattern::clique(4)).with_deadline(Duration::ZERO))
        .unwrap();
    raise_flag(&release);
    assert!(blocker.wait().result.is_ok());
    assert!(matches!(doomed.wait().result, Err(EngineError::TimeLimit)));
    let m = svc.metrics();
    assert_eq!(m.deadline_expired, 1);
    assert_eq!(
        m.plan_cache.misses, 1,
        "the expired query must never have built a plan"
    );
    assert_eq!(m.plan_cache.hits, 0);
}

/// Cost-aware admission: with a calibrated cost rate, a deadline the
/// estimate says is unmeetable is rejected up front; the same query
/// with a generous deadline (or no deadline) is admitted.
#[test]
fn cost_gate_rejects_unmeetable_deadlines() {
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        plan_cache_capacity: 8,
        governor: GovernorConfig {
            // 1 cost unit per ms: even K5 queries "cost" hundreds of ms.
            cost_per_ms: Some(1),
            ..GovernorConfig::default()
        },
        ..ServiceConfig::default()
    });
    svc.register_graph("k5", k5());
    let err = svc
        .submit(QueryRequest::new("k5", Pattern::clique(3)).with_deadline(Duration::from_millis(1)))
        .unwrap_err();
    match err {
        Rejected::DeadlineUnmeetable { estimated_cost } => assert!(estimated_cost > 0),
        other => panic!("expected DeadlineUnmeetable, got {other:?}"),
    }
    let out = svc
        .submit(QueryRequest::new("k5", Pattern::clique(3)).with_deadline(Duration::from_secs(60)))
        .unwrap()
        .wait();
    assert_eq!(out.result.unwrap().matches, 10);
    let m = svc.metrics();
    assert_eq!(m.rejected_unmeetable, 1);
    assert_eq!(m.completed, 1);
}

/// CoDel-style sojourn shedding: under sustained queue delay the
/// governor sheds the newest Low-priority queued query with a typed
/// `Shed` outcome; Normal-priority work is never sojourn-shed.
#[test]
fn sojourn_shedding_drops_newest_low_priority_work() {
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        plan_cache_capacity: 8,
        governor: GovernorConfig {
            shed_policy: ShedPolicy::Sojourn {
                target: Duration::from_millis(15),
            },
            tick: Duration::from_millis(2),
            ..GovernorConfig::default()
        },
        ..ServiceConfig::default()
    });
    svc.register_graph("k5", k5());
    let entered = Arc::new((Mutex::new(false), Condvar::new()));
    let release = Arc::new((Mutex::new(false), Condvar::new()));
    let blocker = svc
        .submit(
            QueryRequest::new("k5", Pattern::clique(3))
                .with_sink(Arc::new(BlockingSink {
                    entered: entered.clone(),
                    release: release.clone(),
                }))
                .with_durable(false),
        )
        .unwrap();
    wait_flag(&entered);
    let normal = svc
        .submit(QueryRequest::new("k5", Pattern::clique(3)))
        .unwrap();
    let low = svc
        .submit(QueryRequest::new("k5", Pattern::clique(3)).with_priority(Priority::Low))
        .unwrap();
    // Sojourn exceeds the target continuously: the Low query is shed
    // from the queue while the worker is still pinned.
    let mut low = Some(low);
    let deadline = Instant::now() + Duration::from_secs(10);
    let shed_out = loop {
        if let Some(out) = low.as_mut().unwrap().try_wait() {
            break out;
        }
        assert!(Instant::now() < deadline, "low-priority query never shed");
        std::thread::sleep(Duration::from_millis(1));
    };
    assert!(matches!(shed_out.result, Err(EngineError::Shed)));
    assert!(shed_out.partial.is_none(), "never started: no partial");
    raise_flag(&release);
    assert!(blocker.wait().result.is_ok());
    assert_eq!(
        normal.wait().result.unwrap().matches,
        10,
        "normal-priority work survived the shed"
    );
    let m = svc.metrics();
    assert_eq!(m.queries_shed, 1);
    assert_eq!(m.completed, 2);
}

/// Brownout lifecycle: a failure spike opens the breaker (Normal
/// rejected, High admitted), cooldown half-opens it, a good probe
/// closes it again.
#[test]
fn breaker_browns_out_and_recovers() {
    let svc = Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        plan_cache_capacity: 8,
        governor: GovernorConfig {
            breaker: BreakerConfig {
                enabled: true,
                window: 8,
                min_samples: 4,
                trip_ratio: 0.5,
                cooldown: Duration::from_millis(300),
            },
            tick: Duration::from_millis(2),
            ..GovernorConfig::default()
        },
        ..ServiceConfig::default()
    });
    svc.register_graph("k5", k5());
    // Four straight deadline misses trip the breaker.
    for _ in 0..4 {
        let out = svc
            .submit(QueryRequest::new("k5", Pattern::clique(3)).with_deadline(Duration::ZERO))
            .unwrap()
            .wait();
        assert!(matches!(out.result, Err(EngineError::TimeLimit)));
    }
    // Browned out: Normal priority is rejected, High still runs.
    let err = svc
        .submit(QueryRequest::new("k5", Pattern::clique(3)))
        .unwrap_err();
    assert_eq!(err, Rejected::BrownedOut);
    let vip = svc
        .submit(QueryRequest::new("k5", Pattern::clique(3)).with_priority(Priority::High))
        .unwrap()
        .wait();
    assert_eq!(vip.result.unwrap().matches, 10);
    // After the cooldown the breaker half-opens; the next submission is
    // the recovery probe, and its success closes the breaker.
    let deadline = Instant::now() + Duration::from_secs(10);
    let probe = loop {
        match svc.submit(QueryRequest::new("k5", Pattern::clique(3))) {
            Ok(h) => break h,
            Err(Rejected::BrownedOut) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("unexpected rejection {e:?}"),
        }
    };
    assert_eq!(probe.wait().result.unwrap().matches, 10);
    let m = svc.metrics();
    assert_eq!(m.breaker_state, BreakerState::Closed);
    assert!(m.rejected_brownout >= 1);
    assert!(
        m.breaker_state_changes >= 3,
        "closed → open → half-open → closed"
    );
}
