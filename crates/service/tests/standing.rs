//! Standing-query integration tests: incremental match deltas must
//! equal a full pre/post rescan — across every engine strategy, for
//! unlabeled and labeled patterns, over randomized mutation schedules —
//! and the version machinery (snapshot resume fencing, plan-cache
//! discrimination, compaction) must hold around them.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use tdfs_core::{find_matches, reference_count, MatcherConfig};
use tdfs_graph::generators::barabasi_albert;
use tdfs_graph::rng::Rng;
use tdfs_graph::{DeltaCsr, EdgeBatch, GraphView};
use tdfs_query::automorphism::automorphisms;
use tdfs_query::plan::QueryPlan;
use tdfs_query::{Pattern, PatternId};
use tdfs_service::{
    MatchDelta, QueryRequest, Rejected, ResumeError, Service, ServiceConfig, StandingRequest,
};

fn engines() -> Vec<(&'static str, MatcherConfig)> {
    vec![
        ("tdfs", MatcherConfig::tdfs().with_warps(2)),
        ("no_steal", MatcherConfig::no_steal().with_warps(2)),
        ("stmatch", MatcherConfig::stmatch_like().with_warps(2)),
        ("egsm", MatcherConfig::egsm_like().with_warps(2)),
        ("pbe", MatcherConfig::pbe_like().with_warps(2)),
    ]
}

fn house() -> Pattern {
    Pattern::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)])
}

fn small_service() -> Service {
    Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        plan_cache_capacity: 16,
        ..ServiceConfig::default()
    })
}

/// A random batch against the current view: `ins` uniform vertex pairs
/// (some will be present already — effective no-ops) and `del` edges
/// drawn from the live edge set (plus the odd phantom pair).
fn random_batch(view: &DeltaCsr, rng: &mut Rng, ins: usize, del: usize) -> EdgeBatch {
    let n = view.num_vertices() as u32;
    let mut batch = EdgeBatch::new();
    for _ in 0..ins {
        let u = rng.gen_range_u32(0..n);
        let v = rng.gen_range_u32(0..n);
        batch = batch.insert(u, v);
    }
    let edges: Vec<(u32, u32)> = view.arcs().filter(|&(u, v)| u < v).collect();
    for _ in 0..del {
        if edges.is_empty() {
            break;
        }
        let (u, v) = edges[rng.gen_range(0..edges.len())];
        batch = batch.delete(u, v);
    }
    // A phantom delete exercises effective-batch normalization.
    batch = batch.delete(rng.gen_range_u32(0..n), rng.gen_range_u32(0..n));
    batch
}

/// The maintenance identity, checked per batch against a full rescan:
/// `count(post) − count(pre) == added − removed`, and the telescoped
/// running count stays exact across the whole schedule.
#[test]
fn incremental_deltas_equal_full_rescan_for_every_engine() {
    let cases: Vec<(&str, Pattern, bool)> = vec![
        ("k3", Pattern::clique(3), false),
        ("k4", PatternId(2).pattern(), false),
        ("house", house(), false),
        ("diamond_labeled", PatternId(12).pattern(), true),
    ];
    for (ename, cfg) in engines() {
        for (pname, pattern, labeled) in &cases {
            let svc = small_service();
            let base = barabasi_albert(120, 4, 7);
            let base = if *labeled {
                let n = base.num_vertices();
                base.with_labels((0..n as u32).map(|v| v % 4).collect())
            } else {
                base
            };
            svc.register_graph("g", Arc::new(base));
            let seen: Arc<Mutex<Vec<MatchDelta>>> = Arc::new(Mutex::new(Vec::new()));
            let sink = seen.clone();
            svc.register_standing(
                StandingRequest::new("g", pattern.clone()).with_config(cfg.clone()),
                move |d| sink.lock().unwrap().push(d.clone()),
            )
            .unwrap();

            let plan = QueryPlan::build_with(pattern, Default::default());
            let mut rng = Rng::seed_from_u64(0xD15C0 + pattern.num_vertices() as u64);
            let mut running = reference_count(&*svc.catalog().get("g").unwrap(), &plan) as i64;
            for round in 0..5 {
                let pre = svc.catalog().get("g").unwrap();
                let batch = random_batch(&pre, &mut rng, 10, 6);
                let report = svc.apply("g", &batch).unwrap();
                let post = svc.catalog().get("g").unwrap();
                assert_eq!(post.version(), report.version, "{ename}/{pname}");

                let pre_count = reference_count(&*pre, &plan) as i64;
                let post_count = reference_count(&*post, &plan) as i64;
                let deltas = seen.lock().unwrap();
                let d = deltas.last().expect("one delta per batch");
                assert_eq!(d.version, report.version);
                assert_eq!(
                    post_count - pre_count,
                    d.added as i64 - d.removed as i64,
                    "{ename}/{pname} round {round}: rescan {pre_count}→{post_count}, \
                     delta +{} −{}",
                    d.added,
                    d.removed,
                );
                running += d.added as i64 - d.removed as i64;
                assert_eq!(
                    running, post_count,
                    "{ename}/{pname} telescoped count drifted"
                );
            }
            let m = svc.metrics();
            assert_eq!(m.batches_applied, 5);
            assert_eq!(m.standing_notifications, 5, "exactly one delta per batch");
            assert!(m.maintenance_jobs > 0, "maintenance rode the queue");
        }
    }
}

/// Canonical form of a pattern-vertex-indexed assignment: lexicographic
/// minimum over the pattern's automorphism group.
fn canonical(aut: &[Vec<usize>], m: &[u32]) -> Vec<u32> {
    aut.iter()
        .map(|sigma| sigma.iter().map(|&s| m[s]).collect::<Vec<u32>>())
        .min()
        .unwrap_or_else(|| m.to_vec())
}

/// Requested embeddings are the exact set difference of the pre/post
/// match sets, in canonical form.
#[test]
fn reported_embeddings_are_the_exact_set_difference() {
    use std::collections::BTreeSet;
    let pattern = Pattern::clique(3);
    let aut = automorphisms(&pattern);
    let cfg = MatcherConfig::tdfs().with_warps(2);

    let svc = small_service();
    svc.register_graph("g", Arc::new(barabasi_albert(60, 3, 11)));
    let seen: Arc<Mutex<Vec<MatchDelta>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    svc.register_standing(
        StandingRequest::new("g", pattern.clone())
            .with_config(cfg.clone())
            .with_embeddings(),
        move |d| sink.lock().unwrap().push(d.clone()),
    )
    .unwrap();

    let all_matches = |view: &DeltaCsr| -> BTreeSet<Vec<u32>> {
        let (_, ms) = find_matches(view, &pattern, &cfg, usize::MAX).unwrap();
        ms.iter().map(|m| canonical(&aut, m)).collect()
    };

    let mut rng = Rng::seed_from_u64(99);
    for _ in 0..4 {
        let pre = svc.catalog().get("g").unwrap();
        let before = all_matches(&pre);
        let batch = random_batch(&pre, &mut rng, 12, 8);
        svc.apply("g", &batch).unwrap();
        let after = all_matches(&svc.catalog().get("g").unwrap());

        let deltas = seen.lock().unwrap();
        let d = deltas.last().unwrap();
        let added: BTreeSet<Vec<u32>> = d.added_embeddings.clone().unwrap().into_iter().collect();
        let removed: BTreeSet<Vec<u32>> =
            d.removed_embeddings.clone().unwrap().into_iter().collect();
        assert_eq!(added, after.difference(&before).cloned().collect());
        assert_eq!(removed, before.difference(&after).cloned().collect());
        assert_eq!(added.len() as u64, d.added);
        assert_eq!(removed.len() as u64, d.removed);
    }
}

/// A snapshot taken at one graph version must not resume against
/// another: the shard ranges index that version's admitted-edge space.
#[test]
fn resume_is_fenced_to_the_snapshot_graph_version() {
    let svc = small_service();
    svc.register_graph("g", Arc::new(barabasi_albert(200, 4, 3)));
    let pattern = Pattern::clique(3);
    let h = svc
        .submit(QueryRequest::new("g", pattern.clone()).with_durable(true))
        .unwrap();
    let id = h.id();
    let want = h.wait().result.unwrap().matches;
    let bytes = svc.snapshot(id).unwrap();

    // Same version: the checkpoint resumes and reproduces the count.
    let out = svc.resume(&bytes).unwrap().wait();
    assert_eq!(out.result.unwrap().matches, want);

    // Any committed batch moves the version; the same bytes now refuse.
    svc.apply("g", &EdgeBatch::new().insert(0, 199)).unwrap();
    match svc.resume(&bytes) {
        Err(ResumeError::GraphVersionMismatch { expected, actual }) => {
            assert_eq!((expected, actual), (0, 1));
        }
        other => panic!("expected GraphVersionMismatch, got {other:?}"),
    }
}

/// Queries racing an apply each run against a frozen view: counts match
/// either the pre- or the post-batch graph, never a torn in-between.
#[test]
fn inflight_queries_are_snapshot_isolated_and_cache_discriminates_versions() {
    let svc = small_service();
    svc.register_graph("g", Arc::new(barabasi_albert(80, 3, 5)));
    let pattern = Pattern::clique(3);
    let plan = QueryPlan::build_with(&pattern, Default::default());

    let pre_count = reference_count(&*svc.catalog().get("g").unwrap(), &plan);
    let want = svc
        .submit(QueryRequest::new("g", pattern.clone()))
        .unwrap()
        .wait()
        .result
        .unwrap()
        .matches;
    assert_eq!(want, pre_count);

    for i in 0..3 {
        svc.apply("g", &EdgeBatch::new().insert(i, i + 40)).unwrap();
        let post_count = reference_count(&*svc.catalog().get("g").unwrap(), &plan);
        let got = svc
            .submit(QueryRequest::new("g", pattern.clone()))
            .unwrap()
            .wait()
            .result
            .unwrap()
            .matches;
        assert_eq!(got, post_count, "query after apply sees the new version");
    }
    // One plan per surviving (graph, version) generation, never a stale
    // hit: each applied batch invalidated the superseded generation.
    let stats = svc.metrics().plan_cache;
    assert!(stats.misses >= 4, "each version compiles its own plan");

    // Compaction changes representation, not content or version.
    let before = svc.catalog().get("g").unwrap();
    assert!(!before.is_compact());
    let v = svc.compact_graph("g").unwrap();
    let after = svc.catalog().get("g").unwrap();
    assert_eq!(v, before.version());
    assert_eq!(after.version(), before.version());
    assert!(after.is_compact());
    assert_eq!(
        reference_count(&*after, &plan),
        reference_count(&*before, &plan)
    );
}

/// Lifecycle: unknown graphs are rejected, unregistering a standing
/// query stops its deltas, and unregistering a graph drops its standing
/// queries.
#[test]
fn standing_lifecycle_and_rejections() {
    let svc = small_service();
    let err = svc
        .register_standing(StandingRequest::new("nope", Pattern::clique(3)), |_| {})
        .unwrap_err();
    assert_eq!(err, Rejected::UnknownGraph("nope".into()));

    svc.register_graph("g", Arc::new(barabasi_albert(40, 3, 1)));
    let seen: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let sink = seen.clone();
    let id = svc
        .register_standing(StandingRequest::new("g", Pattern::clique(3)), move |_| {
            *sink.lock().unwrap() += 1;
        })
        .unwrap();
    svc.apply("g", &EdgeBatch::new().insert(0, 1)).unwrap();
    assert_eq!(*seen.lock().unwrap(), 1);

    assert!(svc.unregister_standing(id));
    assert!(!svc.unregister_standing(id), "second removal is a no-op");
    svc.apply("g", &EdgeBatch::new().delete(0, 1)).unwrap();
    assert_eq!(*seen.lock().unwrap(), 1, "no deltas after unregister");

    // Standing queries die with their graph.
    let sink2 = seen.clone();
    svc.register_standing(StandingRequest::new("g", Pattern::clique(3)), move |_| {
        *sink2.lock().unwrap() += 100;
    })
    .unwrap();
    svc.unregister_graph("g").unwrap();
    let err = svc.apply("g", &EdgeBatch::new().insert(0, 1)).unwrap_err();
    assert!(matches!(err, tdfs_service::ApplyError::UnknownGraph(_)));
    assert_eq!(*seen.lock().unwrap(), 1);
}

/// Maintenance runs as Low-priority durable work but the delta stays
/// exact even when the service is too busy to take it — the dispatch
/// falls back inline after bounded retries.
#[test]
fn maintenance_falls_back_inline_when_the_queue_is_saturated() {
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        plan_cache_capacity: 8,
        default_deadline: Some(Duration::from_secs(30)),
        ..ServiceConfig::default()
    });
    svc.register_graph("g", Arc::new(barabasi_albert(100, 4, 9)));
    let pattern = Pattern::clique(3);
    let plan = QueryPlan::build_with(&pattern, Default::default());
    let seen: Arc<Mutex<Vec<MatchDelta>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    svc.register_standing(StandingRequest::new("g", pattern.clone()), move |d| {
        sink.lock().unwrap().push(d.clone())
    })
    .unwrap();

    // Saturate: a long query occupies the single worker while a second
    // fills the one queue slot, so maintenance dispatch gets QueueFull.
    let big = PatternId(8).pattern();
    let q1 = svc.submit(QueryRequest::new("g", big.clone())).unwrap();
    let q2 = svc.submit(QueryRequest::new("g", big.clone())).unwrap();

    let pre = svc.catalog().get("g").unwrap();
    let pre_count = reference_count(&*pre, &plan) as i64;
    svc.apply(
        "g",
        &EdgeBatch::new().insert(0, 50).insert(1, 51).delete(0, 1),
    )
    .unwrap();
    let post_count = reference_count(&*svc.catalog().get("g").unwrap(), &plan) as i64;

    let deltas = seen.lock().unwrap();
    let d = deltas.last().expect("delta delivered despite saturation");
    assert_eq!(post_count - pre_count, d.added as i64 - d.removed as i64);
    drop(deltas);

    assert!(q1.wait().result.is_ok());
    assert!(q2.wait().result.is_ok());
    svc.shutdown();
}
