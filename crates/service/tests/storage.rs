//! Big-graph storage-tier integration tests: the service running on
//! disk-resident (`TDFSGRPH` mmap) graphs whose decoded adjacency is
//! ≥10× the configured memory budget must count exactly on every
//! engine, survive a restart at the same [`tdfs_graph::GraphVersion`]
//! with its delta overlay intact, resume persisted suspended queries to
//! the uninterrupted count, and compact by streaming a new container
//! without ever materializing the graph on the heap.

use std::sync::Arc;
use std::time::Duration;

use tdfs_core::{host_filter_edges, match_plan_on_edges, reference_count, MatcherConfig};
use tdfs_graph::generators::rmat;
use tdfs_graph::rng::Rng;
use tdfs_graph::{CsrGraph, DeltaCsr, EdgeBatch, GraphBase, GraphView};
use tdfs_mem::PAGE_BYTES;
use tdfs_query::plan::QueryPlan;
use tdfs_query::Pattern;
use tdfs_service::snapshot::{self, QuerySnapshot};
use tdfs_service::{
    DiskCatalog, DurableConfig, GovernorConfig, QueryRequest, Service, ServiceConfig, Shard,
};

/// Service-wide page budget for these tests: 3 pages (24 KB), far below
/// every graph used, so the decode cache must evict constantly.
const BUDGET_PAGES: usize = 3;

fn engines() -> Vec<(&'static str, MatcherConfig)> {
    vec![
        ("tdfs", MatcherConfig::tdfs().with_warps(2)),
        ("no_steal", MatcherConfig::no_steal().with_warps(2)),
        ("stmatch", MatcherConfig::stmatch_like().with_warps(2)),
        ("egsm", MatcherConfig::egsm_like().with_warps(2)),
        ("pbe", MatcherConfig::pbe_like().with_warps(2)),
    ]
}

fn storage_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        plan_cache_capacity: 16,
        durability: DurableConfig {
            shard_edges: 64,
            ..DurableConfig::default()
        },
        governor: GovernorConfig {
            memory_budget_pages: Some(BUDGET_PAGES),
            // The budget here is an accounting ceiling for the decode
            // cache, not an execution gate: with the graph permanently
            // larger than the budget, the auto-suspend water mark would
            // otherwise park every durable query forever.
            suspend_high_water: f64::INFINITY,
            ..GovernorConfig::default()
        },
        ..ServiceConfig::default()
    }
}

fn big_graph() -> CsrGraph {
    rmat(12, 10, [0.57, 0.19, 0.19, 0.05], 97)
}

/// Exact count over a catalog view, under the decode-cache pin scope a
/// disk-resident graph's reader contract requires (heap views return
/// `None` and the guard is free).
fn exact(view: &DeltaCsr, plan: &QueryPlan) -> u64 {
    let _scope = view.pin_scope();
    reference_count(view, plan)
}

/// The headline acceptance test: an RMAT graph whose decoded adjacency
/// is ≥10× the service memory budget, registered persistently (served
/// off the mmap'd container through the budget-charged decode cache),
/// counts exactly on all five engines.
#[test]
fn mmap_graph_ten_times_the_budget_counts_exactly_on_every_engine() {
    let dir = tdfs_testkit::TempDir::new("tdfs-storage-big").unwrap();
    let g = Arc::new(big_graph());
    assert!(
        g.num_arcs() * 4 >= 10 * BUDGET_PAGES * PAGE_BYTES,
        "graph must dwarf the budget: {} adjacency bytes vs {} budget",
        g.num_arcs() * 4,
        BUDGET_PAGES * PAGE_BYTES
    );
    let opened = Service::open(dir.path(), storage_config()).unwrap();
    let svc = opened.service;
    svc.register_graph_persistent("g", g.clone()).unwrap();

    // The catalog serves the *mapped* container, not the heap graph.
    let view = svc.catalog().get("g").unwrap();
    assert!(
        matches!(view.base(), GraphBase::Mapped(_)),
        "persistent graph must be disk-resident"
    );
    drop(view);

    let mut checked = Vec::new();
    for (pname, pattern) in [("k3", Pattern::clique(3))] {
        for (ename, config) in engines() {
            let want = reference_count(&*g, &QueryPlan::build_with(&pattern, config.plan));
            let out = svc
                .submit(QueryRequest::new("g", pattern.clone()).with_config(config))
                .unwrap()
                .wait();
            let r = out.result.expect("query over mmap graph failed");
            assert_eq!(r.matches, want, "{ename}/{pname}: wrong count over mmap");
            checked.push(ename);
        }
    }
    // One heavier pattern on the default engine for depth coverage.
    let k4 = Pattern::clique(4);
    let config = MatcherConfig::tdfs().with_warps(2);
    let want = reference_count(&*g, &QueryPlan::build_with(&k4, config.plan));
    let out = svc
        .submit(QueryRequest::new("g", k4).with_config(config))
        .unwrap()
        .wait();
    assert_eq!(out.result.unwrap().matches, want, "tdfs/k4 over mmap");
    assert_eq!(checked.len(), 5);
}

fn random_batch(n: u32, rng: &mut Rng, ins: usize, del: usize) -> EdgeBatch {
    let mut batch = EdgeBatch::new();
    for _ in 0..ins {
        batch = batch.insert(rng.gen_range_u32(0..n), rng.gen_range_u32(0..n));
    }
    for _ in 0..del {
        batch = batch.delete(rng.gen_range_u32(0..n), rng.gen_range_u32(0..n));
    }
    batch
}

/// Apply a batch sequence to a persistent (mmap-based) graph and to an
/// in-memory twin in the same service; restart; the reopened graph must
/// be at the same version with the same exact counts as the twin.
#[test]
fn restart_reopens_the_graph_at_the_same_version_with_the_overlay_intact() {
    let dir = tdfs_testkit::TempDir::new("tdfs-storage-restart").unwrap();
    let g = Arc::new(rmat(9, 8, [0.45, 0.22, 0.22, 0.11], 31));
    let n = g.num_vertices() as u32;
    let pattern = Pattern::clique(3);
    let plan = QueryPlan::build_with(&pattern, Default::default());

    let (version, want) = {
        let opened = Service::open(dir.path(), storage_config()).unwrap();
        let svc = opened.service;
        svc.register_graph_persistent("g", g.clone()).unwrap();
        svc.register_graph("twin", g.clone());
        let mut rng = Rng::seed_from_u64(0xD15C0);
        for _ in 0..6 {
            let batch = random_batch(n, &mut rng, 40, 10);
            let a = svc.apply("g", &batch).unwrap();
            let b = svc.apply("twin", &batch).unwrap();
            assert_eq!((a.inserted, a.deleted), (b.inserted, b.deleted));
        }
        let disk_view = svc.catalog().get("g").unwrap();
        let twin_view = svc.catalog().get("twin").unwrap();
        assert_eq!(disk_view.version(), 6);
        let want = exact(&twin_view, &plan);
        assert_eq!(
            exact(&disk_view, &plan),
            want,
            "overlay-over-mmap disagrees with overlay-over-heap"
        );
        (disk_view.version(), want)
    }; // service drops: workers join, state stays on disk

    let opened = Service::open(dir.path(), storage_config()).unwrap();
    assert!(opened.failed.is_empty());
    let svc = opened.service;
    let view = svc.catalog().get("g").expect("graph survives restart");
    assert_eq!(view.version(), version, "restart lost the version");
    assert!(matches!(view.base(), GraphBase::Mapped(_)));
    assert_eq!(exact(&view, &plan), want, "restart changed the match count");
    // And the restored graph still executes through the service.
    let out = svc.submit(QueryRequest::new("g", pattern)).unwrap().wait();
    assert_eq!(out.result.unwrap().matches, want);
}

/// Restart-resume across every engine: a suspended query persisted to
/// the state directory (here: hand-built mid-query checkpoints, the
/// deterministic stand-in for a crash after `suspend_to_disk`) is
/// re-admitted by `Service::open` and runs to the exact uninterrupted
/// count. Snapshot files are consumed on successful admission.
#[test]
fn restart_resumes_persisted_suspended_queries_on_every_engine() {
    let dir = tdfs_testkit::TempDir::new("tdfs-storage-resume").unwrap();
    let g = Arc::new(rmat(9, 8, [0.5, 0.2, 0.2, 0.1], 53));
    let pattern = Pattern::clique(3);

    let mut wants = Vec::new();
    {
        let opened = Service::open(dir.path(), storage_config()).unwrap();
        let svc = opened.service;
        svc.register_graph_persistent("g", g.clone()).unwrap();
        // Persist one mid-query checkpoint per engine, as if each had
        // been suspended to disk moments before a crash: first third of
        // the shard space acked with its exact partial count, the rest
        // pending.
        let disk = DiskCatalog::open(dir.path()).unwrap();
        for (i, (_, config)) in engines().into_iter().enumerate() {
            let plan = QueryPlan::build_with(&pattern, config.plan);
            let want = reference_count(&*g, &plan);
            let edges = host_filter_edges(&*g, &plan);
            let split = edges.len() / 3;
            let head = match_plan_on_edges(&*g, &plan, &config, edges[..split].to_vec(), None)
                .unwrap()
                .matches;
            let snap = QuerySnapshot {
                graph: "g".into(),
                graph_version: 0,
                pattern: pattern.clone(),
                config,
                edge_count: edges.len() as u64,
                matches: head,
                emitted: 0,
                tasks_acked: 1,
                resumes: 0,
                next_task_id: 2,
                acked: vec![0],
                pending: vec![(
                    1,
                    0,
                    Shard {
                        start: split as u32,
                        end: edges.len() as u32,
                    },
                )],
            };
            disk.write_snapshot(i as u64 + 1, &snapshot::encode(&snap))
                .unwrap();
            wants.push(want);
        }
    }

    let opened = Service::open(dir.path(), storage_config()).unwrap();
    assert!(
        opened.failed.is_empty(),
        "no snapshot may fail to resume: {:?}",
        opened.failed
    );
    assert_eq!(opened.resumed.len(), 5, "one resumed query per engine");
    for (i, handle) in opened.resumed.into_iter().enumerate() {
        let out = handle.wait();
        let r = out.result.expect("resumed run failed");
        assert_eq!(
            r.matches, wants[i],
            "engine #{i}: resumed count differs from the uninterrupted run"
        );
    }
    // Consumed on admission: a third open has nothing left to resume.
    drop(opened.service);
    let reopened = Service::open(dir.path(), storage_config()).unwrap();
    assert!(reopened.resumed.is_empty(), "snapshots must be consumed");
    assert_eq!(svc_metrics_resumes(&reopened.service), 0);
}

fn svc_metrics_resumes(svc: &Service) -> u64 {
    svc.metrics().resumes
}

/// The live path: `suspend_to_disk` checkpoints a running query into
/// the state directory; after a restart the query is re-admitted and
/// lands on the exact count.
#[test]
fn suspend_to_disk_survives_a_restart() {
    let dir = tdfs_testkit::TempDir::new("tdfs-storage-suspend").unwrap();
    let g = Arc::new(rmat(10, 10, [0.57, 0.19, 0.19, 0.05], 71));
    let pattern = Pattern::clique(4);
    let config = MatcherConfig::tdfs().with_warps(2);
    let want = reference_count(&*g, &QueryPlan::build_with(&pattern, config.plan));

    {
        let opened = Service::open(dir.path(), storage_config()).unwrap();
        let svc = opened.service;
        svc.register_graph_persistent("g", g.clone()).unwrap();
        let h = svc
            .submit(QueryRequest::new("g", pattern.clone()).with_config(config))
            .unwrap();
        // `NotStarted`/`UnknownQuery` are transient while the query sits
        // in the queue; persist the first checkpoint that materializes.
        let id = h.id();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match svc.suspend_to_disk(id) {
                Ok(_) => break,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("suspend_to_disk failed: {e}"),
            }
        }
        // Let the original finish (exactly) so shutdown can drain; the
        // persisted checkpoint stays on disk regardless.
        assert!(svc.unsuspend(id));
        assert_eq!(h.wait().result.unwrap().matches, want);
    }

    let opened = Service::open(dir.path(), storage_config()).unwrap();
    assert!(opened.failed.is_empty(), "{:?}", opened.failed);
    assert_eq!(opened.resumed.len(), 1);
    let out = opened.resumed.into_iter().next().unwrap().wait();
    assert_eq!(
        out.result.unwrap().matches,
        want,
        "resumed-after-restart count differs from the uninterrupted run"
    );
}

/// Compaction of a persistent graph streams a fresh container straight
/// from the live view (never a heap CSR), keeps the version, and the
/// compacted container is what a restart reopens.
#[test]
fn compaction_streams_a_new_container_and_survives_restart() {
    let dir = tdfs_testkit::TempDir::new("tdfs-storage-compact").unwrap();
    let g = Arc::new(rmat(9, 8, [0.45, 0.22, 0.22, 0.11], 83));
    let n = g.num_vertices() as u32;
    let pattern = Pattern::clique(3);
    let plan = QueryPlan::build_with(&pattern, Default::default());

    let (version, want) = {
        let opened = Service::open(dir.path(), storage_config()).unwrap();
        let svc = opened.service;
        svc.register_graph_persistent("g", g.clone()).unwrap();
        let mut rng = Rng::seed_from_u64(0xC04);
        for _ in 0..4 {
            svc.apply("g", &random_batch(n, &mut rng, 30, 8)).unwrap();
        }
        let pre = svc.catalog().get("g").unwrap();
        assert!(!pre.is_compact(), "batches must leave an overlay");
        let want = exact(&pre, &plan);
        let version = svc.compact_graph("g").unwrap();
        assert_eq!(
            version,
            pre.version(),
            "compaction must not change the version"
        );
        drop(pre);

        let post = svc.catalog().get("g").unwrap();
        assert!(post.is_compact(), "compaction must fold the overlay");
        assert!(
            matches!(post.base(), GraphBase::Mapped(_)),
            "compacted persistent graph must still be disk-resident"
        );
        assert_eq!(exact(&post, &plan), want);
        (version, want)
    };

    let opened = Service::open(dir.path(), storage_config()).unwrap();
    let view = opened.service.catalog().get("g").unwrap();
    assert_eq!(view.version(), version);
    assert!(
        view.is_compact(),
        "restart must reopen the compacted container"
    );
    assert_eq!(exact(&view, &plan), want);
}

/// `register_graph_persistent` without a state directory, and storage
/// name validation, both fail typed.
#[test]
fn persistence_requires_a_state_directory_and_a_storable_name() {
    let svc = Service::new(storage_config());
    let g = Arc::new(rmat(5, 4, [0.5, 0.2, 0.2, 0.1], 1));
    assert!(svc.register_graph_persistent("g", g.clone()).is_err());

    let dir = tdfs_testkit::TempDir::new("tdfs-storage-names").unwrap();
    let opened = Service::open(dir.path(), storage_config()).unwrap();
    assert!(opened
        .service
        .register_graph_persistent("../escape", g.clone())
        .is_err());
    assert!(opened
        .service
        .register_graph_persistent("ok-name", g)
        .is_ok());
    // DeltaCsr twin registered in memory only: applying to it does not
    // touch the manifest.
    let disk = DiskCatalog::open(dir.path()).unwrap();
    assert_eq!(disk.read_manifest().unwrap(), vec!["ok-name".to_owned()]);
}
