//! Multithreaded service stress: many client threads, multiple graphs,
//! mixed labeled/unlabeled patterns, backpressure, and cancellation —
//! the end-to-end behaviours the subsystem exists to provide.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tdfs_core::{reference_count, MatcherConfig};
use tdfs_graph::generators::{barabasi_albert, random_labels};
use tdfs_query::plan::QueryPlan;
use tdfs_query::{Pattern, PatternId};
use tdfs_service::{QueryRequest, Rejected, Service, ServiceConfig};

/// N client threads hammer one service with mixed queries against two
/// graphs; every completed count must equal the serial reference count.
#[test]
fn concurrent_clients_get_correct_counts() {
    let svc = Arc::new(Service::new(ServiceConfig {
        workers: 3,
        queue_capacity: 128,
        plan_cache_capacity: 16,
        ..ServiceConfig::default()
    }));
    let plain = Arc::new(barabasi_albert(250, 4, 31));
    let labeled = {
        let g = barabasi_albert(250, 4, 32);
        let n = g.num_vertices();
        Arc::new(g.with_labels(random_labels(n, 3, 33)))
    };
    svc.register_graph("plain", plain.clone());
    svc.register_graph("labeled", labeled.clone());

    // (graph name, pattern) workload; PatternId(12) is labeled (mod-3
    // labels on the diamond) so it exercises label filtering on the
    // labeled graph.
    let workload: Vec<(&str, Pattern)> = vec![
        ("plain", PatternId(1).pattern()),
        ("plain", Pattern::clique(3)),
        ("plain", PatternId(3).pattern()),
        ("labeled", Pattern::clique(3)),
        ("labeled", PatternId(12).pattern()),
        ("labeled", Pattern::path(4)),
    ];
    let expected: Vec<u64> = workload
        .iter()
        .map(|(name, p)| {
            let g = if *name == "plain" { &plain } else { &labeled };
            reference_count(g, &QueryPlan::build_with(p, Default::default()))
        })
        .collect();

    let clients: Vec<_> = (0..6)
        .map(|c| {
            let svc = svc.clone();
            let workload = workload.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for round in 0..4 {
                    let i = (c + round) % workload.len();
                    let (name, p) = &workload[i];
                    let req = QueryRequest::new(*name, p.clone())
                        .with_config(MatcherConfig::tdfs().with_warps(2));
                    let out = svc
                        .submit(req)
                        .expect("queue sized for the workload")
                        .wait();
                    let r = out.result.expect("query failed");
                    assert!(!r.stats.cancelled);
                    assert_eq!(
                        r.matches, expected[i],
                        "client {c} round {round}: wrong count for {name}/{i}"
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let m = svc.metrics();
    assert_eq!(m.admitted, 24);
    assert_eq!(m.completed, 24);
    assert_eq!(m.cancelled + m.deadline_expired + m.failed, 0);
    assert_eq!(m.queue_depth, 0);
    // 6 distinct (graph, pattern) pairs → at most 6 plans built even
    // under concurrency-raced duplicate builds; the rest are hits.
    let pc = m.plan_cache;
    assert!(pc.hits + pc.misses >= 24);
    assert!(pc.hits >= 24 - 2 * 6, "cache barely used: {pc:?}");
}

/// A full queue rejects immediately instead of blocking the client.
#[test]
fn saturated_service_rejects_not_blocks() {
    let svc = Arc::new(Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        plan_cache_capacity: 4,
        ..ServiceConfig::default()
    }));
    // One big graph so each query holds the single worker a while.
    svc.register_graph("ba", Arc::new(barabasi_albert(1500, 10, 34)));
    let rejected = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    let mut max_submit = Duration::ZERO;
    for _ in 0..12 {
        let req = QueryRequest::new("ba", PatternId(8).pattern())
            .with_config(MatcherConfig::tdfs().with_warps(2));
        let t = Instant::now();
        let r = svc.submit(req);
        max_submit = max_submit.max(t.elapsed());
        match r {
            Ok(h) => handles.push(h),
            Err(Rejected::QueueFull) => {
                rejected.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => panic!("unexpected rejection {e}"),
        }
    }
    assert!(
        max_submit < Duration::from_secs(1),
        "submit blocked for {max_submit:?}"
    );
    // Cancel everything still pending so the test winds down fast.
    for h in &handles {
        h.cancel();
    }
    for h in handles {
        assert!(h.wait().result.is_ok());
    }
    let m = svc.metrics();
    assert_eq!(m.rejected_queue_full, rejected.load(Ordering::Relaxed));
    assert!(
        m.rejected_queue_full > 0,
        "queue of 2 with 1 worker never filled across 12 fast submits"
    );
    assert_eq!(m.admitted, 12 - m.rejected_queue_full);
}

/// A cancelled query returns promptly with `cancelled` set in its stats.
#[test]
fn cancellation_is_prompt_and_reported() {
    let svc = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        plan_cache_capacity: 4,
        ..ServiceConfig::default()
    });
    // Large dense graph + 5-vertex near-clique: minutes of work uncancelled.
    svc.register_graph("big", Arc::new(barabasi_albert(6000, 24, 35)));
    let h = svc
        .submit(
            QueryRequest::new("big", PatternId(8).pattern())
                .with_config(MatcherConfig::tdfs().with_warps(2)),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let t = Instant::now();
    h.cancel();
    let out = h.wait();
    let wind_down = t.elapsed();
    let r = out.result.expect("cancel must not be an error");
    assert!(
        r.stats.cancelled,
        "run finished a 6000-vertex dense census in 50 ms?"
    );
    assert!(
        wind_down < Duration::from_secs(5),
        "cancel took {wind_down:?} to take effect"
    );
    let m = svc.metrics();
    assert_eq!(m.cancelled, 1);
    assert_eq!(m.completed, 1);
}
