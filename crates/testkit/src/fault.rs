//! Scriptable named fault points.
//!
//! The runtime crates (`tdfs-gpu`, `tdfs-mem`, `tdfs-core`, `tdfs-service`)
//! embed *fault points* — named hooks at the places the paper's algorithms can
//! fail in production: the task queue filling up mid-push (Alg. 3), the paged
//! arena running dry mid-`fill_level` (Alg. 5), a warp stalling long enough to
//! trip timeout decomposition (Alg. 4), a service worker panicking. With the
//! `chaos` cargo feature off those hooks compile to nothing. With it on, each
//! hook consults the global registry in this module: a test installs a
//! [`ChaosScript`] describing *when* each named point should fire
//! (always, the Nth hit, every Nth hit, a hit range, with probability p, or
//! on an explicit schedule of hit indices) and *what* should happen (inject
//! the failure path, panic, stall, or — at network points — drop, duplicate,
//! delay, or kill). Points may be *keyed* ([`fire_keyed`]): a cluster frame
//! point reports the node id it belongs to, so a script can fault exactly one
//! node ([`ChaosScript::on_keyed`]) while its peers run clean.
//!
//! The registry is process-global because fault points are reached from deep
//! inside the engines where threading a handle through every call would
//! distort the code under test. Tests that install scripts must therefore be
//! serialized; [`ChaosScript::install`] returns a [`ChaosGuard`] that holds a
//! global mutex for the duration of the test and clears the registry on drop.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use tdfs_graph::rng::Rng;

/// Decides on which hits of a fault point the configured action fires.
#[derive(Debug, Clone)]
pub enum Trigger {
    /// Never fire. The default for any point without a script entry.
    Never,
    /// Fire on every hit.
    Always,
    /// Fire only on the `n`th hit (1-based).
    Nth(u64),
    /// Fire on the first `n` hits, then go quiet.
    FirstN(u64),
    /// Fire on every `n`th hit (hits n, 2n, 3n, ...).
    EveryNth(u64),
    /// Fire on each hit independently with probability `p`, using a seeded
    /// deterministic RNG (SplitMix64) so runs are reproducible.
    Probability(f64),
    /// Fire exactly on the listed 1-based hit indices.
    Schedule(Vec<u64>),
    /// Fire on every hit in the inclusive 1-based range `[from, to]`. Models
    /// a fault window — e.g. a network partition that heals — without
    /// enumerating every index the way [`Trigger::Schedule`] would.
    Range { from: u64, to: u64 },
}

impl Trigger {
    fn decide(&self, hit: u64, rng: &mut Rng) -> bool {
        match self {
            Trigger::Never => false,
            Trigger::Always => true,
            Trigger::Nth(n) => hit == *n,
            Trigger::FirstN(n) => hit <= *n,
            Trigger::EveryNth(n) => *n != 0 && hit.is_multiple_of(*n),
            Trigger::Probability(p) => rng.gen_f64() < *p,
            Trigger::Schedule(hits) => hits.contains(&hit),
            Trigger::Range { from, to } => hit >= *from && hit <= *to,
        }
    }
}

/// What happens when a fault point fires.
#[derive(Debug, Clone)]
pub enum Action {
    /// Take the failure path at the call site (e.g. report the queue full,
    /// report the arena out of pages). This is the default action.
    Inject,
    /// Panic with a message, to exercise unwind-recovery paths.
    Panic(&'static str),
    /// Stall the calling thread by yielding `yields` times before continuing
    /// on the success path. Models a straggler warp without wall-clock sleeps.
    Stall { yields: u32 },
    /// Sleep the calling thread for `millis` before continuing on the
    /// success path. Models a stalled-but-alive worker holding a lease past
    /// its deadline — the zombie in lease-fencing tests, where the stall
    /// must outlast a wall-clock lease timeout (which `Stall`'s scheduler
    /// yields cannot guarantee).
    Sleep { millis: u64 },
    /// Network: the frame in flight is silently discarded. The call site
    /// pretends the send succeeded (or the receive never happened) so the
    /// peer's retry/timeout machinery has to recover.
    Drop,
    /// Network: the frame is delivered twice. Exercises sequence-number
    /// dedup and the epoch fences behind it.
    Duplicate,
    /// Network: sleep `millis`, then deliver normally. Distinct from
    /// [`Action::Sleep`] only in intent — a slow link rather than a stalled
    /// worker — so chaos scripts read as network scripts.
    Delay { millis: u64 },
    /// Process death at a named point: the call site must abandon all
    /// in-flight work *without* acking, flushing, or cleaning up — the
    /// testkit's model of `kill -9`.
    Kill,
}

struct Entry {
    /// `None` scripts the point for every key (wildcard); `Some(k)` scripts
    /// it only for hits reporting key `k` (e.g. one cluster node's id).
    key: Option<u64>,
    trigger: Trigger,
    action: Action,
    hits: AtomicU64,
    fired: AtomicU64,
    rng: Mutex<Rng>,
}

#[derive(Default)]
struct Registry {
    /// Per point name, the keyed entries (at most one per key, wildcard
    /// included). Small vectors — scripts list a handful of keys at most —
    /// so linear scans beat a nested map.
    entries: HashMap<&'static str, Vec<Entry>>,
    /// Hit counters for points that were reached but have no script entry.
    /// Lets tests assert coverage ("the point was compiled in and reached")
    /// without scripting it.
    unscripted_hits: HashMap<&'static str, u64>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock_registry() -> MutexGuard<'static, Registry> {
    // Chaos tests panic on purpose; a poisoned registry is expected and the
    // data (plain counters + triggers) cannot be left in a torn state.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// The outcome a fault point reports back to its call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Continue on the normal path.
    Pass,
    /// Take the failure path.
    Inject,
    /// Network: discard the frame and pretend nothing happened.
    Drop,
    /// Network: deliver the frame twice.
    Duplicate,
    /// Die here: abandon all in-flight work without acking or cleanup.
    Kill,
}

/// Record a hit on `name` and return what the call site should do.
///
/// This is the single entry point used by the `chaos_inject!` / `chaos_point!`
/// macros in the runtime crates. `Action::Panic` panics from here;
/// `Action::Stall`/`Action::Sleep`/`Action::Delay` block from here and then
/// report [`Outcome::Pass`].
pub fn fire(name: &'static str) -> Outcome {
    fire_impl(name, None)
}

/// Like [`fire`], but the call site reports a key (e.g. a cluster node id).
///
/// Lookup prefers an entry scripted for exactly this key, then falls back to
/// the wildcard entry installed by [`ChaosScript::on`]; hits land on whichever
/// entry matched (or the unscripted counter if neither exists).
pub fn fire_keyed(name: &'static str, key: u64) -> Outcome {
    fire_impl(name, Some(key))
}

fn fire_impl(name: &'static str, key: Option<u64>) -> Outcome {
    let decision = {
        let mut reg = lock_registry();
        let entry = reg.entries.get(name).and_then(|entries| {
            // Exact key match wins; a wildcard entry catches the rest.
            key.and_then(|k| entries.iter().find(|e| e.key == Some(k)))
                .or_else(|| entries.iter().find(|e| e.key.is_none()))
        });
        match entry {
            Some(entry) => {
                let hit = entry.hits.fetch_add(1, Ordering::Relaxed) + 1;
                let mut rng = entry.rng.lock().unwrap_or_else(PoisonError::into_inner);
                if entry.trigger.decide(hit, &mut rng) {
                    entry.fired.fetch_add(1, Ordering::Relaxed);
                    Some(entry.action.clone())
                } else {
                    None
                }
            }
            None => {
                *reg.unscripted_hits.entry(name).or_insert(0) += 1;
                None
            }
        }
    };
    match decision {
        None => Outcome::Pass,
        Some(Action::Inject) => Outcome::Inject,
        Some(Action::Panic(msg)) => panic!("chaos[{name}]: {msg}"),
        Some(Action::Stall { yields }) => {
            for _ in 0..yields {
                std::thread::yield_now();
            }
            Outcome::Pass
        }
        Some(Action::Sleep { millis }) | Some(Action::Delay { millis }) => {
            std::thread::sleep(std::time::Duration::from_millis(millis));
            Outcome::Pass
        }
        Some(Action::Drop) => Outcome::Drop,
        Some(Action::Duplicate) => Outcome::Duplicate,
        Some(Action::Kill) => Outcome::Kill,
    }
}

/// Total times `name` was reached (scripted or not, summed over all keys)
/// since the last reset.
pub fn hits(name: &str) -> u64 {
    let reg = lock_registry();
    if let Some(entries) = reg.entries.get(name) {
        entries.iter().map(|e| e.hits.load(Ordering::Relaxed)).sum()
    } else {
        reg.unscripted_hits.get(name).copied().unwrap_or(0)
    }
}

/// Times `name`'s action actually fired (summed over all keys) since the
/// last reset.
pub fn injections(name: &str) -> u64 {
    let reg = lock_registry();
    reg.entries
        .get(name)
        .map(|entries| {
            entries
                .iter()
                .map(|e| e.fired.load(Ordering::Relaxed))
                .sum()
        })
        .unwrap_or(0)
}

/// Times the entry scripted for exactly `key` on `name` fired. Wildcard
/// entries are reported under [`injections`], not here.
pub fn injections_keyed(name: &str, key: u64) -> u64 {
    let reg = lock_registry();
    reg.entries
        .get(name)
        .and_then(|entries| entries.iter().find(|e| e.key == Some(key)))
        .map(|e| e.fired.load(Ordering::Relaxed))
        .unwrap_or(0)
}

fn clear() {
    let mut reg = lock_registry();
    reg.entries.clear();
    reg.unscripted_hits.clear();
}

/// A script mapping fault-point names to (trigger, action) pairs.
///
/// ```ignore
/// let _chaos = ChaosScript::new()
///     .on("mem.arena.oom", Trigger::Nth(3), Action::Inject)
///     .on("core.dfs.straggler", Trigger::Probability(0.5), Action::Inject)
///     .seed(42)
///     .install();
/// // ... run the engine; fault points fire per the script ...
/// assert!(tdfs_testkit::fault::injections("mem.arena.oom") >= 1);
/// // dropping the guard clears the registry
/// ```
#[derive(Default)]
pub struct ChaosScript {
    points: Vec<(&'static str, Option<u64>, Trigger, Action)>,
    seed: u64,
}

impl ChaosScript {
    pub fn new() -> Self {
        ChaosScript {
            points: Vec::new(),
            seed: 0xb5ad4ece_da1ce2a9,
        }
    }

    /// Add a scripted point matching every key (wildcard). Later entries for
    /// the same name+key replace earlier ones at install time.
    pub fn on(mut self, name: &'static str, trigger: Trigger, action: Action) -> Self {
        self.points.push((name, None, trigger, action));
        self
    }

    /// Add a scripted point that only matches hits reporting `key` via
    /// [`fire_keyed`] — e.g. fault exactly one cluster node while its peers
    /// run clean. Keyed and wildcard entries coexist on one name; exact key
    /// wins at fire time.
    pub fn on_keyed(
        mut self,
        name: &'static str,
        key: u64,
        trigger: Trigger,
        action: Action,
    ) -> Self {
        self.points.push((name, Some(key), trigger, action));
        self
    }

    /// Shorthand for `.on(name, trigger, Action::Inject)`.
    pub fn inject(self, name: &'static str, trigger: Trigger) -> Self {
        self.on(name, trigger, Action::Inject)
    }

    /// Seed for the per-point RNGs used by [`Trigger::Probability`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Install the script into the global registry, serializing against other
    /// chaos tests. Hold the returned guard for the duration of the test.
    pub fn install(self) -> ChaosGuard {
        let serial = chaos_serial_lock();
        clear();
        let mut reg = lock_registry();
        for (i, (name, key, trigger, action)) in self.points.into_iter().enumerate() {
            let entry = Entry {
                key,
                trigger,
                action,
                hits: AtomicU64::new(0),
                fired: AtomicU64::new(0),
                rng: Mutex::new(Rng::seed_from_u64(
                    self.seed
                        .wrapping_add(i as u64)
                        .wrapping_mul(0x9e3779b97f4a7c15),
                )),
            };
            let entries = reg.entries.entry(name).or_default();
            match entries.iter_mut().find(|e| e.key == key) {
                Some(existing) => *existing = entry,
                None => entries.push(entry),
            }
        }
        drop(reg);
        ChaosGuard { _serial: serial }
    }
}

fn chaos_serial_lock() -> MutexGuard<'static, ()> {
    static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
    SERIAL
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Serializes chaos tests within a process and clears the registry on drop.
pub struct ChaosGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscripted_points_pass_and_count_hits() {
        let _guard = ChaosScript::new().install();
        assert_eq!(fire("t.unscripted"), Outcome::Pass);
        assert_eq!(fire("t.unscripted"), Outcome::Pass);
        assert_eq!(hits("t.unscripted"), 2);
        assert_eq!(injections("t.unscripted"), 0);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _guard = ChaosScript::new()
            .inject("t.nth", Trigger::Nth(3))
            .install();
        let fired: Vec<bool> = (0..5).map(|_| fire("t.nth") == Outcome::Inject).collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
        assert_eq!(injections("t.nth"), 1);
        assert_eq!(hits("t.nth"), 5);
    }

    #[test]
    fn first_n_and_every_nth() {
        let _guard = ChaosScript::new()
            .inject("t.first", Trigger::FirstN(2))
            .inject("t.every", Trigger::EveryNth(2))
            .install();
        let first: Vec<bool> = (0..4).map(|_| fire("t.first") == Outcome::Inject).collect();
        assert_eq!(first, vec![true, true, false, false]);
        let every: Vec<bool> = (0..4).map(|_| fire("t.every") == Outcome::Inject).collect();
        assert_eq!(every, vec![false, true, false, true]);
    }

    #[test]
    fn schedule_trigger_fires_on_listed_hits() {
        let _guard = ChaosScript::new()
            .inject("t.sched", Trigger::Schedule(vec![1, 4]))
            .install();
        let fired: Vec<bool> = (0..5).map(|_| fire("t.sched") == Outcome::Inject).collect();
        assert_eq!(fired, vec![true, false, false, true, false]);
    }

    #[test]
    fn probability_is_deterministic_for_a_seed() {
        let run = || {
            let _guard = ChaosScript::new()
                .inject("t.prob", Trigger::Probability(0.5))
                .seed(7)
                .install();
            (0..64)
                .map(|_| fire("t.prob") == Outcome::Inject)
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().any(|&f| f));
        assert!(a.iter().any(|&f| !f));
    }

    #[test]
    fn panic_action_panics_with_point_name() {
        let _guard = ChaosScript::new()
            .on("t.panic", Trigger::Always, Action::Panic("boom"))
            .install();
        let err = std::panic::catch_unwind(|| fire("t.panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("t.panic"),
            "panic message should name the point: {msg}"
        );
    }

    #[test]
    fn stall_action_passes_after_yielding() {
        let _guard = ChaosScript::new()
            .on("t.stall", Trigger::Always, Action::Stall { yields: 4 })
            .install();
        assert_eq!(fire("t.stall"), Outcome::Pass);
        assert_eq!(injections("t.stall"), 1);
    }

    #[test]
    fn sleep_action_blocks_for_the_duration() {
        let _guard = ChaosScript::new()
            .on("t.sleep", Trigger::Always, Action::Sleep { millis: 20 })
            .install();
        let t = std::time::Instant::now();
        assert_eq!(fire("t.sleep"), Outcome::Pass);
        assert!(t.elapsed() >= std::time::Duration::from_millis(20));
        assert_eq!(injections("t.sleep"), 1);
    }

    #[test]
    fn range_trigger_fires_inside_window_only() {
        let _guard = ChaosScript::new()
            .inject("t.range", Trigger::Range { from: 2, to: 4 })
            .install();
        let fired: Vec<bool> = (0..6).map(|_| fire("t.range") == Outcome::Inject).collect();
        assert_eq!(fired, vec![false, true, true, true, false, false]);
    }

    #[test]
    fn network_actions_report_their_outcomes() {
        let _guard = ChaosScript::new()
            .on("t.drop", Trigger::Always, Action::Drop)
            .on("t.dup", Trigger::Always, Action::Duplicate)
            .on("t.kill", Trigger::Always, Action::Kill)
            .on("t.delay", Trigger::Always, Action::Delay { millis: 15 })
            .install();
        assert_eq!(fire("t.drop"), Outcome::Drop);
        assert_eq!(fire("t.dup"), Outcome::Duplicate);
        assert_eq!(fire("t.kill"), Outcome::Kill);
        let t = std::time::Instant::now();
        assert_eq!(fire("t.delay"), Outcome::Pass);
        assert!(t.elapsed() >= std::time::Duration::from_millis(15));
        assert_eq!(injections("t.delay"), 1);
    }

    #[test]
    fn keyed_entry_matches_only_its_key() {
        let _guard = ChaosScript::new()
            .on_keyed("t.keyed", 7, Trigger::Always, Action::Drop)
            .install();
        assert_eq!(fire_keyed("t.keyed", 7), Outcome::Drop);
        assert_eq!(fire_keyed("t.keyed", 8), Outcome::Pass);
        assert_eq!(fire("t.keyed"), Outcome::Pass);
        assert_eq!(injections_keyed("t.keyed", 7), 1);
        assert_eq!(injections_keyed("t.keyed", 8), 0);
        // Only the matched keyed hit counts; unmatched keys fall through to
        // the unscripted counter, which scripted names shadow.
        assert_eq!(hits("t.keyed"), 1);
    }

    #[test]
    fn keyed_entry_beats_wildcard_and_wildcard_catches_rest() {
        let _guard = ChaosScript::new()
            .on("t.mixed", Trigger::Always, Action::Duplicate)
            .on_keyed("t.mixed", 3, Trigger::Always, Action::Kill)
            .install();
        assert_eq!(fire_keyed("t.mixed", 3), Outcome::Kill);
        assert_eq!(fire_keyed("t.mixed", 4), Outcome::Duplicate);
        assert_eq!(fire("t.mixed"), Outcome::Duplicate);
        assert_eq!(injections_keyed("t.mixed", 3), 1);
        assert_eq!(injections("t.mixed"), 3);
    }

    #[test]
    fn keyed_entries_count_hits_independently() {
        let _guard = ChaosScript::new()
            .on_keyed("t.counters", 1, Trigger::Nth(2), Action::Drop)
            .on_keyed("t.counters", 2, Trigger::Nth(2), Action::Drop)
            .install();
        // Node 1 hits twice (second fires); node 2 hits once (stays quiet).
        assert_eq!(fire_keyed("t.counters", 1), Outcome::Pass);
        assert_eq!(fire_keyed("t.counters", 1), Outcome::Drop);
        assert_eq!(fire_keyed("t.counters", 2), Outcome::Pass);
        assert_eq!(injections_keyed("t.counters", 1), 1);
        assert_eq!(injections_keyed("t.counters", 2), 0);
        assert_eq!(hits("t.counters"), 3);
    }

    #[test]
    fn guard_drop_clears_registry() {
        {
            let _guard = ChaosScript::new()
                .inject("t.clear", Trigger::Always)
                .install();
            assert_eq!(fire("t.clear"), Outcome::Inject);
        }
        let _guard = ChaosScript::new().install();
        assert_eq!(fire("t.clear"), Outcome::Pass);
        assert_eq!(hits("t.clear"), 1);
    }
}
