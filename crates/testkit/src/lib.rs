//! # tdfs-testkit
//!
//! Fault-injection chaos runtime and deterministic concurrency test kit for
//! the T-DFS engines.
//!
//! Three pieces:
//!
//! * [`fault`] — a global registry of named, scriptable fault points. The
//!   runtime crates embed hooks (via their `chaos_inject!` / `chaos_point!`
//!   macros) that compile to no-ops unless their `chaos` cargo feature is on;
//!   tests install a [`fault::ChaosScript`] to make specific points fail on
//!   the Nth hit, with probability p, or on an explicit schedule.
//! * [`sched`] — a virtual scheduler that drives step-wise concurrent
//!   operations (the queue's `EnqueueOp` / `DequeueOp` state machines) from a
//!   single OS thread in any chosen interleaving, including exhaustive
//!   sweeps over all schedule prefixes of a bounded length.
//! * [`model`] — shadow models (reference implementations) for property
//!   tests, currently the page-arena allocation model.
//! * [`simfs`] — a simulated-power-loss filesystem behind the
//!   `tdfs_graph::vfs::Vfs` seam: records every storage mutation as a
//!   numbered crash point and materializes the disk image "as of power
//!   loss at op N", including torn writes and dropped directory entries.
//! * [`tmp`] — a hand-rolled [`TempDir`] (the workspace has no external
//!   `tempfile` crate) so on-disk storage tests stay hermetic.
//!
//! This crate deliberately depends only on `tdfs-graph` (for the seeded
//! SplitMix64 RNG); the runtime crates depend on *it* optionally, so there is
//! no dependency cycle and release builds never link it.

pub mod fault;
pub mod model;
pub mod sched;
pub mod simfs;
pub mod tmp;

pub use fault::{Action, ChaosGuard, ChaosScript, Outcome, Trigger};
pub use sched::{run_schedule, sweep_schedules, RunOutcome, Step, System};
pub use simfs::{CrashStyle, Image, SimFs, CRASH_STYLES};
pub use tmp::TempDir;
