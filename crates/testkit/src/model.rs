//! Shadow models for property tests.
//!
//! A shadow model is a trivially-correct reference implementation kept in
//! lockstep with the real data structure; after each operation the test
//! asserts the real structure agrees with the model. [`ShadowArena`] models
//! the page arena's allocation bookkeeping (free set, in-use set, peak) so
//! random alloc/free sequences can assert no page is ever double-assigned,
//! freed pages come back, and peak accounting matches.

use std::collections::BTreeSet;

/// Reference model of a fixed-size page allocator.
#[derive(Debug)]
pub struct ShadowArena {
    free: BTreeSet<u32>,
    in_use: BTreeSet<u32>,
    peak: usize,
    allocs: u64,
    failed: u64,
}

impl ShadowArena {
    pub fn new(pages: u32) -> Self {
        ShadowArena {
            free: (0..pages).collect(),
            in_use: BTreeSet::new(),
            peak: 0,
            allocs: 0,
            failed: 0,
        }
    }

    /// Record an allocation result from the real arena. Panics if the real
    /// arena handed out a page the model says is not free (double-assign).
    pub fn on_alloc(&mut self, page: Option<u32>) {
        match page {
            Some(p) => {
                assert!(
                    self.free.remove(&p),
                    "arena double-assigned page {p}: model says it is {}",
                    if self.in_use.contains(&p) {
                        "already in use"
                    } else {
                        "out of range"
                    }
                );
                self.in_use.insert(p);
                self.allocs += 1;
                self.peak = self.peak.max(self.in_use.len());
            }
            None => {
                assert!(
                    self.free.is_empty(),
                    "arena reported OOM with {} pages free in the model",
                    self.free.len()
                );
                self.failed += 1;
            }
        }
    }

    /// Record a free of `page`. Panics on double-free.
    pub fn on_free(&mut self, page: u32) {
        assert!(
            self.in_use.remove(&page),
            "freed page {page} that the model says is not in use"
        );
        self.free.insert(page);
    }

    pub fn in_use(&self) -> usize {
        self.in_use.len()
    }

    pub fn peak(&self) -> usize {
        self.peak
    }

    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    pub fn failed_allocs(&self) -> u64 {
        self.failed
    }

    /// Pages the model believes are currently in use.
    pub fn in_use_pages(&self) -> impl Iterator<Item = u32> + '_ {
        self.in_use.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_alloc_free_peak() {
        let mut m = ShadowArena::new(2);
        m.on_alloc(Some(0));
        m.on_alloc(Some(1));
        assert_eq!(m.in_use(), 2);
        assert_eq!(m.peak(), 2);
        m.on_alloc(None); // exhausted — legitimate OOM
        m.on_free(1);
        m.on_alloc(Some(1)); // freed page reused
        assert_eq!(m.peak(), 2);
        assert_eq!(m.allocs(), 3);
        assert_eq!(m.failed_allocs(), 1);
    }

    #[test]
    fn model_catches_double_assign() {
        let mut m = ShadowArena::new(2);
        m.on_alloc(Some(0));
        assert!(std::panic::catch_unwind(move || m.on_alloc(Some(0))).is_err());
    }

    #[test]
    fn model_catches_spurious_oom() {
        let mut m = ShadowArena::new(2);
        assert!(std::panic::catch_unwind(move || m.on_alloc(None)).is_err());
    }
}
