//! Deterministic virtual scheduler for step-wise concurrent operations.
//!
//! The lock-free task queue (paper Alg. 3) exposes its enqueue/dequeue
//! operations as *step state machines* (`EnqueueOp` / `DequeueOp` in
//! `tdfs-gpu`): each call to `step()` performs at most one atomic transition
//! and reports whether the operation made progress, is blocked waiting on
//! another thread, or finished. That lets this module drive N logical
//! "threads" from a single OS thread in any interleaving we choose — the
//! moral equivalent of picking which warp the GPU scheduler runs next — and
//! therefore replay specific races deterministically or enumerate every
//! schedule prefix of a bounded length.
//!
//! A test implements [`System`]: it owns the shared object plus one op per
//! logical thread, and maps "step thread `i`" onto the right state machine.

/// Result of stepping one logical thread once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread performed a transition and has more work to do.
    Progress,
    /// The thread is blocked waiting on another thread's transition
    /// (e.g. spinning on a cell's sequence ticket).
    Blocked,
    /// The thread's operation completed; further steps are no-ops.
    Done,
}

/// A system of logical threads that can be stepped deterministically.
pub trait System {
    /// Number of logical threads. Thread ids are `0..threads()`.
    fn threads(&self) -> usize;
    /// Step thread `i` once.
    fn step(&mut self, i: usize) -> Step;
}

/// Outcome of driving a system to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// All threads reached [`Step::Done`] within `steps` total steps.
    Completed { steps: usize },
    /// Every unfinished thread reported [`Step::Blocked`] through a full
    /// sweep: no schedule can make progress. The ids are the stuck threads.
    Deadlock { stuck: Vec<usize> },
    /// The step budget ran out with threads still live (livelock guard).
    Exhausted,
}

/// Drive `sys` with an explicit `schedule` prefix (a sequence of thread ids),
/// then finish with deterministic round-robin until done, deadlock, or the
/// step budget `max_steps` is exhausted.
///
/// Steps scheduled on finished threads are skipped and do not count. After
/// the prefix, a full sweep in which every live thread reports
/// [`Step::Blocked`] is declared a deadlock — with single-threaded stepping
/// nothing can change between sweeps, so blocked-everywhere is permanent.
pub fn run_schedule<S: System>(sys: &mut S, schedule: &[usize], max_steps: usize) -> RunOutcome {
    let n = sys.threads();
    let mut done = vec![false; n];
    let mut steps = 0usize;

    let finished = |done: &[bool]| done.iter().all(|&d| d);

    for &i in schedule {
        assert!(i < n, "schedule references thread {i} but system has {n}");
        if done[i] {
            continue;
        }
        if steps >= max_steps {
            return RunOutcome::Exhausted;
        }
        steps += 1;
        if sys.step(i) == Step::Done {
            done[i] = true;
        }
    }

    // Round-robin tail with deadlock detection.
    while !finished(&done) {
        let mut any_progress = false;
        for (i, d) in done.iter_mut().enumerate() {
            if *d {
                continue;
            }
            if steps >= max_steps {
                return RunOutcome::Exhausted;
            }
            steps += 1;
            match sys.step(i) {
                Step::Done => {
                    *d = true;
                    any_progress = true;
                }
                Step::Progress => any_progress = true,
                Step::Blocked => {}
            }
        }
        if !any_progress {
            let stuck = (0..n).filter(|&i| !done[i]).collect();
            return RunOutcome::Deadlock { stuck };
        }
    }
    RunOutcome::Completed { steps }
}

/// Exhaustively enumerate every schedule prefix of length `len` over
/// `threads` logical threads (`threads^len` runs), building a fresh system
/// for each via `make`, driving it with [`run_schedule`], and handing the
/// finished system plus its outcome to `check`.
///
/// This is the "exhaustive small-schedule sweep": the prefix pins down the
/// first `len` scheduling decisions (where the interesting races live —
/// ticket claims and cell handoffs happen in an op's first few steps), and
/// the deterministic round-robin tail completes the run. 4 threads × length 8
/// is 65 536 runs, comfortably fast since all stepping is in-process.
pub fn sweep_schedules<S, F, C>(
    threads: usize,
    len: usize,
    max_steps: usize,
    mut make: F,
    mut check: C,
) -> usize
where
    S: System,
    F: FnMut() -> S,
    C: FnMut(&S, &RunOutcome, &[usize]),
{
    assert!(threads >= 1);
    let total = (threads as u64).pow(len as u32);
    let mut schedule = vec![0usize; len];
    for mut code in 0..total {
        for slot in schedule.iter_mut() {
            *slot = (code % threads as u64) as usize;
            code /= threads as u64;
        }
        let mut sys = make();
        assert_eq!(
            sys.threads(),
            threads,
            "make() must build a {threads}-thread system"
        );
        let outcome = run_schedule(&mut sys, &schedule, max_steps);
        check(&sys, &outcome, &schedule);
    }
    total as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads hand a token back and forth: thread 0 must move first,
    /// thread 1 blocks until it has.
    struct Handoff {
        token: usize,
        remaining: [usize; 2],
    }

    impl System for Handoff {
        fn threads(&self) -> usize {
            2
        }
        fn step(&mut self, i: usize) -> Step {
            if self.remaining[i] == 0 {
                return Step::Done;
            }
            if self.token != i {
                return Step::Blocked;
            }
            self.token = 1 - i;
            self.remaining[i] -= 1;
            if self.remaining[i] == 0 {
                Step::Done
            } else {
                Step::Progress
            }
        }
    }

    #[test]
    fn run_schedule_completes_handoff_in_any_order() {
        for schedule in [&[0usize, 1, 0, 1][..], &[1, 1, 1, 0][..], &[][..]] {
            let mut sys = Handoff {
                token: 0,
                remaining: [2, 2],
            };
            let outcome = run_schedule(&mut sys, schedule, 1000);
            assert!(
                matches!(outcome, RunOutcome::Completed { .. }),
                "{schedule:?}: {outcome:?}"
            );
        }
    }

    #[test]
    fn run_schedule_detects_deadlock() {
        struct Stuck;
        impl System for Stuck {
            fn threads(&self) -> usize {
                2
            }
            fn step(&mut self, _i: usize) -> Step {
                Step::Blocked
            }
        }
        let outcome = run_schedule(&mut Stuck, &[0, 1], 1000);
        assert_eq!(outcome, RunOutcome::Deadlock { stuck: vec![0, 1] });
    }

    #[test]
    fn run_schedule_exhausts_budget_on_livelock() {
        struct Spinner;
        impl System for Spinner {
            fn threads(&self) -> usize {
                1
            }
            fn step(&mut self, _i: usize) -> Step {
                Step::Progress
            }
        }
        assert_eq!(run_schedule(&mut Spinner, &[], 64), RunOutcome::Exhausted);
    }

    #[test]
    fn sweep_enumerates_threads_pow_len_schedules() {
        let mut runs = 0usize;
        let total = sweep_schedules(
            2,
            3,
            1000,
            || Handoff {
                token: 0,
                remaining: [1, 1],
            },
            |_sys, outcome, schedule| {
                runs += 1;
                assert!(
                    matches!(outcome, RunOutcome::Completed { .. }),
                    "schedule {schedule:?} failed: {outcome:?}"
                );
            },
        );
        assert_eq!(total, 8);
        assert_eq!(runs, 8);
    }
}
