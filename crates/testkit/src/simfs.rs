//! Simulated power loss: a recording [`Vfs`] and crash-image builder.
//!
//! [`SimFs`] wraps a real directory (the *mirror*). Every mutation the
//! storage layer issues through the [`Vfs`] seam is (a) applied to the
//! mirror immediately — so the live process, including `mmap` readers,
//! sees exactly what the OS page cache would show — and (b) appended to
//! an in-memory op log. Each log index is a numbered **crash point**:
//! [`SimFs::image`] replays the prefix of the log before that op into a
//! model filesystem and produces the disk state "as of power loss
//! there", under a chosen [`CrashStyle`].
//!
//! The model tracks, per inode, *applied* bytes (issued writes) and
//! *durable* bytes (as of the last `sync_all`), and two namespaces:
//! the applied one (what `readdir` shows the live process) and the
//! durable one (entries made persistent by a parent-directory fsync).
//! `rename`/`remove`/`create` update the applied namespace at once and
//! the durable namespace only when the parent directory is synced —
//! which is how a missing-dir-fsync bug becomes an observable dropped
//! directory entry. Directories themselves are durable on creation
//! (the catalog creates its layout once at open; modeling dir-entry
//! loss for subdirectories would never fire in this workload).
//!
//! Power loss can leave any un-synced subset of writes on disk; the
//! sweep covers the corners of that space rather than its exponential
//! interior:
//!
//! * [`CrashStyle::DurableOnly`] — the adversarial floor: only fsynced
//!   data and fsynced directory entries survive.
//! * [`CrashStyle::AllApplied`] — the lucky ceiling: the cache flushed
//!   everything issued so far.
//! * [`CrashStyle::NamesAppliedDataDurable`] — names as applied, data
//!   as synced: the classic ext4 zero-length-file / stale-content
//!   hazard after an unsynced create or rename.
//! * [`CrashStyle::Torn`] — `AllApplied` plus a half-length prefix of
//!   the write in flight at the crash point (torn/short write).
//!
//! Every durable state a correctly-ordered implementation can produce
//! is one of these; an implementation that skips an fsync produces
//! states `DurableOnly`/`NamesAppliedDataDurable` expose.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs::{self, File};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use tdfs_graph::vfs::{Vfs, VfsFile};

/// One recorded filesystem mutation. Paths are relative to the SimFs
/// root, so crash images are relocatable; file data ops reference the
/// inode id assigned at `create` (handles survive renames).
#[derive(Debug, Clone)]
enum Op {
    MkDirs(PathBuf),
    Create { id: u64, path: PathBuf },
    Write { id: u64, off: u64, data: Vec<u8> },
    SyncFile { id: u64 },
    Rename { from: PathBuf, to: PathBuf },
    Remove(PathBuf),
    SyncDir(PathBuf),
    Marker(String),
}

/// How generously the (simulated) hardware treated un-synced state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashStyle {
    /// Only fsynced data and fsynced directory entries survive.
    DurableOnly,
    /// Every issued op survives (write-back cache fully flushed).
    AllApplied,
    /// Directory entries as applied, file contents as synced — yields
    /// zero-length or stale files behind fresh names.
    NamesAppliedDataDurable,
    /// `AllApplied`, plus a torn half-prefix of the write in flight at
    /// the crash point (if that op is a write).
    Torn,
}

/// All styles, in sweep order.
pub const CRASH_STYLES: [CrashStyle; 4] = [
    CrashStyle::DurableOnly,
    CrashStyle::AllApplied,
    CrashStyle::NamesAppliedDataDurable,
    CrashStyle::Torn,
];

#[derive(Debug, Default)]
struct Log {
    ops: Vec<Op>,
    next_inode: u64,
}

#[derive(Debug)]
struct Shared {
    root: PathBuf,
    log: Mutex<Log>,
}

/// The recording, mirror-backed simulated filesystem (see module docs).
#[derive(Debug, Clone)]
pub struct SimFs {
    shared: Arc<Shared>,
}

impl SimFs {
    /// Wraps `root` (created if absent). All paths handed to the [`Vfs`]
    /// methods must live under it.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<SimFs> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(SimFs {
            shared: Arc::new(Shared {
                root,
                log: Mutex::new(Log::default()),
            }),
        })
    }

    /// The mirror directory the live process reads from.
    pub fn root(&self) -> &Path {
        &self.shared.root
    }

    /// Number of recorded ops; crash points are `0..=op_count()`.
    pub fn op_count(&self) -> usize {
        self.lock().ops.len()
    }

    /// Records a named no-op delimiting workload steps; returns its
    /// crash-point index.
    pub fn marker(&self, label: &str) -> usize {
        let mut log = self.lock();
        log.ops.push(Op::Marker(label.to_string()));
        log.ops.len() - 1
    }

    /// Human description of op `n` (for sweep diagnostics).
    pub fn describe(&self, n: usize) -> String {
        match self.lock().ops.get(n) {
            None => "end-of-log".to_string(),
            Some(Op::Marker(label)) => format!("marker:{label}"),
            Some(op) => format!("{op:?}"),
        }
    }

    /// The disk state if power is lost just before op `n` takes effect
    /// (for [`CrashStyle::Torn`], mid-way through op `n`).
    pub fn image(&self, n: usize, style: CrashStyle) -> Image {
        let log = self.lock();
        let mut dirs: BTreeSet<PathBuf> = BTreeSet::new();
        let mut files: HashMap<u64, Inode> = HashMap::new();
        let mut applied_ns: BTreeMap<PathBuf, u64> = BTreeMap::new();
        let mut durable_ns: BTreeMap<PathBuf, u64> = BTreeMap::new();
        dirs.insert(PathBuf::new());
        for op in log.ops.iter().take(n) {
            match op {
                Op::MkDirs(d) => {
                    let mut cur = d.as_path();
                    loop {
                        dirs.insert(cur.to_path_buf());
                        match cur.parent() {
                            Some(p) => cur = p,
                            None => break,
                        }
                    }
                }
                Op::Create { id, path } => {
                    files.insert(*id, Inode::default());
                    applied_ns.insert(path.clone(), *id);
                }
                Op::Write { id, off, data } => {
                    if let Some(f) = files.get_mut(id) {
                        f.write_applied(*off, data);
                    }
                }
                Op::SyncFile { id } => {
                    if let Some(f) = files.get_mut(id) {
                        f.durable = f.applied.clone();
                    }
                }
                Op::Rename { from, to } => {
                    if let Some(id) = applied_ns.remove(from) {
                        applied_ns.insert(to.clone(), id);
                    }
                }
                Op::Remove(p) => {
                    applied_ns.remove(p);
                }
                Op::SyncDir(d) => {
                    // Reconcile the durable namespace with the applied
                    // one for entries directly inside `d`.
                    let in_dir = |p: &Path| p.parent() == Some(d.as_path());
                    durable_ns.retain(|p, _| !in_dir(p) || applied_ns.contains_key(p));
                    for (p, id) in applied_ns.iter() {
                        if in_dir(p) {
                            durable_ns.insert(p.clone(), *id);
                        }
                    }
                }
                Op::Marker(_) => {}
            }
        }
        if style == CrashStyle::Torn {
            if let Some(Op::Write { id, off, data }) = log.ops.get(n) {
                if let Some(f) = files.get_mut(id) {
                    f.write_applied(*off, &data[..data.len() / 2]);
                }
            }
        }
        let ns = match style {
            CrashStyle::DurableOnly => &durable_ns,
            _ => &applied_ns,
        };
        let mut out = BTreeMap::new();
        for (p, id) in ns {
            let f = &files[id];
            let bytes = match style {
                CrashStyle::DurableOnly | CrashStyle::NamesAppliedDataDurable => &f.durable,
                CrashStyle::AllApplied | CrashStyle::Torn => &f.applied,
            };
            out.insert(p.clone(), bytes.clone());
        }
        Image {
            dirs: dirs.into_iter().collect(),
            files: out,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Log> {
        self.shared
            .log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn rel(&self, path: &Path) -> io::Result<PathBuf> {
        path.strip_prefix(&self.shared.root)
            .map(Path::to_path_buf)
            .map_err(|_| {
                io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    format!("SimFs: path escapes root: {}", path.display()),
                )
            })
    }
}

#[derive(Debug, Default)]
struct Inode {
    applied: Vec<u8>,
    durable: Vec<u8>,
}

impl Inode {
    fn write_applied(&mut self, off: u64, data: &[u8]) {
        let off = off as usize;
        let end = off + data.len();
        if self.applied.len() < end {
            self.applied.resize(end, 0);
        }
        self.applied[off..end].copy_from_slice(data);
    }
}

/// A materialized post-crash disk state: relative dirs + file contents.
#[derive(Debug, Clone)]
pub struct Image {
    pub dirs: Vec<PathBuf>,
    pub files: BTreeMap<PathBuf, Vec<u8>>,
}

impl Image {
    /// Content digest (FNV-1a over paths and bytes) for deduplicating
    /// identical crash images across adjacent crash points.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for d in &self.dirs {
            eat(d.as_os_str().as_encoded_bytes());
            eat(&[0xfe]);
        }
        for (p, bytes) in &self.files {
            eat(p.as_os_str().as_encoded_bytes());
            eat(&[0xff]);
            eat(&(bytes.len() as u64).to_le_bytes());
            eat(bytes);
        }
        h
    }

    /// Writes the image under `out` (created; must be empty or absent).
    pub fn write_to(&self, out: &Path) -> io::Result<()> {
        fs::create_dir_all(out)?;
        for d in &self.dirs {
            fs::create_dir_all(out.join(d))?;
        }
        for (p, bytes) in &self.files {
            let full = out.join(p);
            if let Some(parent) = full.parent() {
                fs::create_dir_all(parent)?;
            }
            fs::write(full, bytes)?;
        }
        Ok(())
    }
}

/// A write-through recorded file handle.
struct SimFile {
    shared: Arc<Shared>,
    id: u64,
    real: File,
    pos: u64,
}

impl Write for SimFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.real.write(buf)?;
        let mut log = self
            .shared
            .log
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        log.ops.push(Op::Write {
            id: self.id,
            off: self.pos,
            data: buf[..n].to_vec(),
        });
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        // A userspace flush has no durability effect; nothing to record.
        self.real.flush()
    }
}

impl Seek for SimFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.pos = self.real.seek(pos)?;
        Ok(self.pos)
    }
}

impl VfsFile for SimFile {
    fn sync_all(&mut self) -> io::Result<()> {
        // The mirror needs no real fsync (tests don't survive host
        // power loss); only the model transition matters.
        let mut log = self
            .shared
            .log
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        log.ops.push(Op::SyncFile { id: self.id });
        Ok(())
    }
}

impl Vfs for SimFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let rel = self.rel(path)?;
        let real = File::create(path)?;
        let mut log = self.lock();
        let id = log.next_inode;
        log.next_inode += 1;
        log.ops.push(Op::Create { id, path: rel });
        drop(log);
        Ok(Box::new(SimFile {
            shared: Arc::clone(&self.shared),
            id,
            real,
            pos: 0,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let (rf, rt) = (self.rel(from)?, self.rel(to)?);
        fs::rename(from, to)?;
        self.lock().ops.push(Op::Rename { from: rf, to: rt });
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let rel = self.rel(path)?;
        match fs::remove_file(path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        }
        self.lock().ops.push(Op::Remove(rel));
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let rel = self.rel(dir)?;
        self.lock().ops.push(Op::SyncDir(rel));
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let rel = self.rel(dir)?;
        fs::create_dir_all(dir)?;
        self.lock().ops.push(Op::MkDirs(rel));
        Ok(())
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.rel(dir)?;
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            out.push(PathBuf::from(entry?.file_name()));
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tmp::TempDir;

    fn setup() -> (TempDir, SimFs) {
        let dir = TempDir::new("tdfs-simfs").unwrap();
        let fs_ = SimFs::new(dir.path()).unwrap();
        (dir, fs_)
    }

    /// The canonical atomic-write protocol, step by step.
    fn atomic_write(fs_: &SimFs, root: &Path, name: &str, data: &[u8]) {
        fs_.create_dir_all(&root.join("tmp")).unwrap();
        let stage = root.join("tmp").join(format!("{name}.0"));
        let mut f = fs_.create(&stage).unwrap();
        f.write_all(data).unwrap();
        f.sync_all().unwrap();
        drop(f);
        fs_.rename(&stage, &root.join(name)).unwrap();
        fs_.sync_dir(root).unwrap();
    }

    #[test]
    fn mirror_sees_applied_state_immediately() {
        let (dir, fs_) = setup();
        atomic_write(&fs_, dir.path(), "FILE", b"payload");
        assert_eq!(fs::read(dir.join("FILE")).unwrap(), b"payload");
        assert!(fs_
            .read_dir(dir.path())
            .unwrap()
            .contains(&PathBuf::from("FILE")));
    }

    #[test]
    fn durable_only_honors_sync_boundaries() {
        let (dir, fs_) = setup();
        atomic_write(&fs_, dir.path(), "FILE", b"payload");
        let end = fs_.op_count();

        // Crash after everything: file fully present.
        let img = fs_.image(end, CrashStyle::DurableOnly);
        assert_eq!(img.files.get(Path::new("FILE")).unwrap(), b"payload");

        // Crash before the final sync_dir: the rename is not durable —
        // FILE is missing, the synced staging file survives under tmp/.
        let img = fs_.image(end - 1, CrashStyle::DurableOnly);
        assert!(!img.files.contains_key(Path::new("FILE")));
        // (staging entry itself also needs a tmp/ dir sync to be
        // durable; none was issued, so DurableOnly drops it too)
        assert!(img.files.is_empty());

        // Same point, ext4-style: name present, data synced → intact.
        let img = fs_.image(end - 1, CrashStyle::NamesAppliedDataDurable);
        assert_eq!(img.files.get(Path::new("FILE")).unwrap(), b"payload");
    }

    #[test]
    fn unsynced_data_is_lost_and_torn_writes_tear() {
        let (dir, fs_) = setup();
        fs_.create_dir_all(&dir.join("tmp")).unwrap();
        let stage = dir.join("tmp").join("f.0");
        let mut f = fs_.create(&stage).unwrap();
        let before_write = fs_.op_count();
        f.write_all(b"0123456789").unwrap();
        drop(f);
        fs_.rename(&stage, &dir.join("f")).unwrap();
        fs_.sync_dir(dir.path()).unwrap();
        let end = fs_.op_count();

        // Name durable (dir synced) but data never synced → zero-length.
        let img = fs_.image(end, CrashStyle::DurableOnly);
        assert_eq!(img.files.get(Path::new("f")).unwrap(), b"");

        // Torn at the write: half the bytes landed.
        let img = fs_.image(before_write, CrashStyle::Torn);
        assert_eq!(img.files.get(Path::new("tmp/f.0")).unwrap(), b"01234");
    }

    #[test]
    fn rename_replaces_and_remove_needs_dir_sync() {
        let (dir, fs_) = setup();
        atomic_write(&fs_, dir.path(), "FILE", b"v1");
        atomic_write(&fs_, dir.path(), "FILE", b"v2");
        let end = fs_.op_count();
        // Fully synced: v2 everywhere.
        assert_eq!(
            fs_.image(end, CrashStyle::DurableOnly)
                .files
                .get(Path::new("FILE"))
                .unwrap(),
            b"v2"
        );
        // Before the second dir sync, the durable name still maps to v1
        // even though v2's data is synced: old-or-new, never hybrid.
        assert_eq!(
            fs_.image(end - 1, CrashStyle::DurableOnly)
                .files
                .get(Path::new("FILE"))
                .unwrap(),
            b"v1"
        );

        fs_.remove_file(&dir.join("FILE")).unwrap();
        let after_rm = fs_.op_count();
        // Removal applied but the dir not synced: durable view keeps it.
        assert!(fs_
            .image(after_rm, CrashStyle::DurableOnly)
            .files
            .contains_key(Path::new("FILE")));
        fs_.sync_dir(dir.path()).unwrap();
        assert!(!fs_
            .image(fs_.op_count(), CrashStyle::DurableOnly)
            .files
            .contains_key(Path::new("FILE")));
    }

    #[test]
    fn images_roundtrip_to_disk_and_digest_dedups() {
        let (dir, fs_) = setup();
        atomic_write(&fs_, dir.path(), "FILE", b"payload");
        let end = fs_.op_count();
        let img = fs_.image(end, CrashStyle::DurableOnly);
        let also = fs_.image(end, CrashStyle::AllApplied);
        assert_eq!(img.digest(), also.digest(), "synced state: styles agree");
        let m = fs_.marker("step");
        assert_eq!(m, end);
        let out = TempDir::new("tdfs-simfs-out").unwrap();
        img.write_to(out.path()).unwrap();
        assert_eq!(fs::read(out.join("FILE")).unwrap(), b"payload");
        assert!(out.join("tmp").is_dir(), "dirs are recreated");
    }
}
