//! Hand-rolled hermetic temp directories for storage tests.
//!
//! The workspace builds offline with no external crates, so there is no
//! `tempfile`; this is the minimal slice of it the storage tests need: a
//! process-unique directory under `std::env::temp_dir()` that is
//! recursively removed on drop. Uniqueness comes from the process id, a
//! monotonic in-process counter and the creation race being retried —
//! two tests (or two concurrent `cargo test` processes) can never
//! observe each other's files, which is exactly the tempdir/ordering
//! hermeticity the tier-1 suite needs.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};
use std::{fs, io};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory removed (recursively, best-effort) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `$TMPDIR/<prefix>-<pid>-<nanos>-<seq>`, retrying on the
    /// (astronomically unlikely) collision.
    pub fn new(prefix: &str) -> io::Result<TempDir> {
        let pid = std::process::id();
        for _ in 0..16 {
            let seq = NEXT.fetch_add(1, Ordering::Relaxed);
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.subsec_nanos());
            let path = std::env::temp_dir().join(format!("{prefix}-{pid}-{nanos}-{seq}"));
            match fs::create_dir(&path) {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "could not create a unique temp directory",
        ))
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the directory.
    pub fn join(&self, rel: impl AsRef<Path>) -> PathBuf {
        self.path.join(rel)
    }

    /// Consumes the guard without deleting the directory (debugging aid).
    pub fn keep(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = TempDir::new("tdfs-tmp-test").unwrap();
        let b = TempDir::new("tdfs-tmp-test").unwrap();
        assert_ne!(a.path(), b.path());
        fs::write(a.join("f"), b"x").unwrap();
        let pa = a.path().to_path_buf();
        drop(a);
        assert!(!pa.exists(), "dropped TempDir removes its tree");
        assert!(b.path().exists());
    }

    #[test]
    fn keep_disarms_cleanup() {
        let d = TempDir::new("tdfs-tmp-keep").unwrap();
        let p = d.keep();
        assert!(p.exists());
        fs::remove_dir_all(p).unwrap();
    }
}
