//! k-clique census — the sibling depth-first subgraph-search workload
//! the paper's introduction cites (k-clique counting, maximal clique
//! enumeration are solved by the same warp-per-subtree DFS paradigm).
//!
//! Counts K3..K7 on a dense power-law graph with T-DFS. Cliques show the
//! engine at its best: nested backward sets make intersection reuse
//! maximally effective, and symmetry breaking divides the work by k!.
//!
//! ```sh
//! cargo run --release --example clique_census
//! ```

use tdfs::core::{match_pattern, MatcherConfig};
use tdfs::graph::generators::barabasi_albert;
use tdfs::graph::GraphStats;
use tdfs::query::plan::QueryPlan;
use tdfs::query::Pattern;

fn main() {
    let g = barabasi_albert(6_000, 8, 0xC11C);
    println!("{}", GraphStats::of(&g).table_row("dense_net"));
    println!();
    println!(
        "{:<5} {:>14} {:>10} {:>8} {:>16}",
        "k", "k-cliques", "time(ms)", "|Aut|", "reuse operands"
    );

    let cfg = MatcherConfig::tdfs();
    for k in 3..=7 {
        let p = Pattern::clique(k);
        let plan = QueryPlan::build(&p);
        let saved: usize = plan
            .levels
            .iter()
            .map(|l| {
                l.reuse.as_ref().map_or(0, |s| {
                    // operands the seed replaces
                    l.backward.len() - s.remaining.len()
                })
            })
            .sum();
        let r = match_pattern(&g, &p, &cfg).expect("matching failed");
        println!(
            "{:<5} {:>14} {:>10.1} {:>8} {:>16}",
            k,
            r.matches,
            r.millis(),
            plan.aut_size,
            saved
        );
    }
}
