//! Labeled property-graph search — matching typed patterns against a
//! labeled community graph (the Fig. 10 / Table IV regime of the paper).
//!
//! Shows how label selectivity shrinks the search: the same structure is
//! matched with 1, 4, 8 and 16 labels on the data side, and the run time
//! and match count fall as labels get more selective.
//!
//! ```sh
//! cargo run --release --example labeled_search
//! ```

use tdfs::core::{match_pattern, MatcherConfig};
use tdfs::graph::generators::{barabasi_albert, random_labels};
use tdfs::query::PatternId;

fn main() {
    let base = barabasi_albert(8_000, 6, 0x1ABE1);
    let n = base.num_vertices();
    let cfg = MatcherConfig::tdfs();

    println!(
        "{:<8} {:>8} {:>14} {:>10}",
        "pattern", "|L|", "matches", "time(ms)"
    );
    for id in [PatternId(12), PatternId(15), PatternId(19)] {
        let p = id.pattern();
        for labels in [4usize, 8, 12, 16] {
            // Re-label the same topology with growing selectivity. The
            // pattern uses labels (i mod 4), so with |L| > 4 a growing
            // fraction of data vertices matches no query label at all —
            // exactly the high-selectivity regime of the paper's
            // Table IV.
            let g = base
                .clone()
                .with_labels(random_labels(n, labels, 7 + labels as u64));
            let r = match_pattern(&g, &p, &cfg).expect("matching failed");
            println!(
                "{:<8} {:>8} {:>14} {:>10.1}",
                id.name(),
                labels,
                r.matches,
                r.millis()
            );
        }
        println!();
    }
}
