//! Multi-device scale-up (paper §IV-E, Fig. 12).
//!
//! Partitions the initial edge tasks round-robin across 1, 2 and 4
//! simulated devices — each with its own warp pool, task queue and page
//! arena — and reports the speedup curve. On a machine with enough
//! cores, speedup is near-linear, matching the paper's finding that the
//! round-robin initial assignment balances well without task migration.
//!
//! ```sh
//! cargo run --release --example multi_device
//! ```

use tdfs::core::{run_multi_device, MatcherConfig};
use tdfs::graph::generators::barabasi_albert;
use tdfs::query::plan::QueryPlan;
use tdfs::query::PatternId;

fn main() {
    let g = barabasi_albert(8_000, 5, 0xD0D0);
    let cores = tdfs::core::config::default_warps();
    let warps_per_device = (cores / 4).max(1);
    let cfg = MatcherConfig::tdfs().with_warps(warps_per_device);
    if cores < 8 {
        println!(
            "note: only {cores} core(s) available — devices timeshare the CPU,
             so wall-clock speedup will be flat; per-device match balance
             still demonstrates the round-robin partitioning.
"
        );
    }

    for id in [PatternId(2), PatternId(4), PatternId(5)] {
        let plan = QueryPlan::build_with(&id.pattern(), cfg.plan);
        println!("{} ({} warps/device):", id.name(), warps_per_device);
        let mut t1 = None;
        for devices in [1usize, 2, 4] {
            let r = run_multi_device(&g, &plan, &cfg, devices).expect("run failed");
            let secs = r.elapsed.as_secs_f64();
            let speedup = t1.get_or_insert(secs).max(1e-12) / secs.max(1e-12);
            println!(
                "  {} device(s): {:>10} matches in {:>8.1} ms  speedup {:>5.2}x",
                devices,
                r.matches,
                secs * 1e3,
                if devices == 1 { 1.0 } else { speedup }
            );
        }
        println!();
    }
}
