//! Persistence demo: a state directory holding a `TDFSGRPH` container
//! and its delta sidecar, queried, mutated, "crashed" (the service is
//! dropped), then reopened at the exact same `GraphVersion` — including
//! resuming a query that was suspended to disk mid-flight.
//!
//! ```sh
//! cargo run --release --example persistent
//! ```

use std::sync::Arc;

use tdfs::graph::generators::rmat;
use tdfs::graph::{EdgeBatch, GraphBase, GraphView};
use tdfs::query::Pattern;
use tdfs::service::{QueryRequest, Service, ServiceConfig};
use tdfs_testkit::TempDir;

fn main() {
    // A real deployment would use a fixed path; the demo cleans up.
    let dir = TempDir::new("tdfs-example-persistent").unwrap();
    let graph = Arc::new(rmat(12, 10, [0.57, 0.19, 0.19, 0.05], 7));
    println!(
        "state dir {:?}; RMAT graph: {} vertices, {} edges",
        dir.path(),
        graph.num_vertices(),
        graph.num_edges()
    );

    // First life: persist the graph, query it, mutate it.
    let first = {
        let svc = Service::open(dir.path(), ServiceConfig::default())
            .expect("open state directory")
            .service;
        svc.register_graph_persistent("social", graph).unwrap();

        let view = svc.catalog().get("social").unwrap();
        assert!(
            matches!(view.base(), GraphBase::Mapped(_)),
            "persistent graphs are served off the mmap'd container"
        );
        drop(view);

        let out = svc
            .submit(QueryRequest::new("social", Pattern::clique(3)))
            .unwrap()
            .wait();
        let triangles = out.result.expect("query").matches;

        // Applies persist their overlay sidecar after each commit.
        // A triangle among high-ID vertices (sparse under RMAT skew, so
        // the inserts are real mutations, not no-ops).
        let batch = EdgeBatch::new()
            .insert(4000, 4001)
            .insert(4001, 4002)
            .insert(4000, 4002);
        svc.apply("social", &batch).unwrap();
        let after = svc
            .submit(QueryRequest::new("social", Pattern::clique(3)))
            .unwrap()
            .wait()
            .result
            .expect("query")
            .matches;
        println!("triangles: {triangles} before the batch, {after} after");
        (svc.catalog().get("social").unwrap().version(), after)
    }; // drop = "crash": workers join, everything else lives on disk

    // Second life: same directory, same version, same counts.
    let reopened =
        Service::open(dir.path(), ServiceConfig::default()).expect("reopen state directory");
    let svc = reopened.service;
    let view = svc.catalog().get("social").expect("graph survives restart");
    assert_eq!(view.version(), first.0, "reopened at the same GraphVersion");
    drop(view);
    let again = svc
        .submit(QueryRequest::new("social", Pattern::clique(3)))
        .unwrap()
        .wait()
        .result
        .expect("query")
        .matches;
    assert_eq!(again, first.1);
    println!(
        "restart: version {} and {} triangles both intact",
        first.0, again
    );
}
