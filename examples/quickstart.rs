//! Quickstart: build a graph, pick a pattern, count matches with T-DFS.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tdfs::core::{match_pattern, MatcherConfig};
use tdfs::graph::GraphBuilder;
use tdfs::query::{Pattern, PatternId};

fn main() {
    // A small collaboration-style graph: two overlapping cliques plus a
    // few bridges.
    let g = GraphBuilder::new()
        .edges([
            // clique {0,1,2,3}
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            // clique {3,4,5,6}
            (3, 4),
            (3, 5),
            (3, 6),
            (4, 5),
            (4, 6),
            (5, 6),
            // bridges
            (2, 4),
            (6, 7),
            (7, 8),
            (8, 0),
        ])
        .build();
    println!(
        "data graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Count the catalogue patterns P1 (diamond) and P2 (4-clique).
    let cfg = MatcherConfig::tdfs();
    for id in [PatternId(1), PatternId(2)] {
        let p = id.pattern();
        let r = match_pattern(&g, &p, &cfg).expect("matching failed");
        println!(
            "{}: {} vertices / {} edges -> {} distinct subgraphs in {:.3} ms",
            id.name(),
            p.num_vertices(),
            p.num_edges(),
            r.matches,
            r.millis()
        );
    }

    // Or bring your own pattern: a "bowtie" (two triangles sharing a
    // vertex).
    let bowtie = Pattern::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]);
    let r = match_pattern(&g, &bowtie, &cfg).expect("matching failed");
    println!("bowtie: {} distinct subgraphs", r.matches);
}
