//! Serving demo: one `tdfs-service` instance, two registered graphs,
//! concurrent clients running labeled and unlabeled queries, a
//! suspend/resume round-trip through a serialized checkpoint, then a
//! service metrics printout.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use std::sync::Arc;
use std::time::Duration;

use tdfs::core::MatcherConfig;
use tdfs::graph::generators::{barabasi_albert, random_labels};
use tdfs::query::{Pattern, PatternId};
use tdfs::service::{QueryRequest, Rejected, Service, ServiceConfig};

fn main() {
    let svc = Arc::new(Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        plan_cache_capacity: 16,
        default_deadline: Some(Duration::from_secs(30)),
        ..ServiceConfig::default()
    }));

    // Tenant graphs: an unlabeled scale-free graph and a labeled one.
    let social = Arc::new(barabasi_albert(2000, 6, 42));
    let catalog = {
        let g = barabasi_albert(1500, 5, 7);
        let n = g.num_vertices();
        Arc::new(g.with_labels(random_labels(n, 4, 9)))
    };
    svc.register_graph("social", social);
    svc.register_graph("catalog", catalog);
    println!("registered graphs: {:?}", svc.catalog().names());

    // Concurrent clients: each submits its workload and waits on the
    // handles. `PatternId(12)` is a labeled diamond; the two triangle
    // submissions against the same graph share one cached plan.
    let clients: Vec<_> = [
        ("social", vec![PatternId(1).pattern(), Pattern::clique(3)]),
        ("social", vec![Pattern::clique(3), PatternId(3).pattern()]),
        ("catalog", vec![PatternId(12).pattern(), Pattern::path(4)]),
    ]
    .into_iter()
    .enumerate()
    .map(|(c, (graph, patterns))| {
        let svc = svc.clone();
        std::thread::spawn(move || {
            for p in patterns {
                let req = QueryRequest::new(graph, p.clone())
                    .with_config(MatcherConfig::tdfs().with_warps(2));
                match svc.submit(req) {
                    Ok(handle) => {
                        let out = handle.wait();
                        match out.result {
                            Ok(r) => println!(
                                "client {c}: {graph} / {}v{}e pattern -> {} matches in {:?}",
                                p.num_vertices(),
                                p.num_edges(),
                                r.matches,
                                out.latency
                            ),
                            Err(e) => println!("client {c}: query failed: {e}"),
                        }
                    }
                    Err(Rejected::QueueFull) => {
                        println!("client {c}: backpressure, shedding this query")
                    }
                    Err(e) => println!("client {c}: rejected: {e}"),
                }
            }
        })
    })
    .collect();
    for c in clients {
        c.join().unwrap();
    }

    // A query we abandon: cancel it right after submission and observe
    // the prompt partial completion.
    let handle = svc
        .submit(
            QueryRequest::new("social", PatternId(8).pattern())
                .with_config(MatcherConfig::tdfs().with_warps(2)),
        )
        .unwrap();
    handle.cancel();
    let out = handle.wait();
    println!(
        "cancelled query: cancelled={}, partial count {}",
        out.cancelled(),
        out.result.map(|r| r.matches).unwrap_or(0)
    );

    // Suspend/resume: checkpoint a running query to bytes, cancel the
    // original, and resume the image — the resumed query picks up the
    // already-acked shards' counts and finishes only the remainder. The
    // byte buffer could as well have crossed a process restart.
    let handle = svc
        .submit(
            QueryRequest::new("social", PatternId(8).pattern())
                .with_config(MatcherConfig::tdfs().with_warps(2)),
        )
        .unwrap();
    let id = handle.id();
    let checkpoint = loop {
        match svc.snapshot(id) {
            Ok(bytes) => break bytes,
            // Transient: still queued, or mid-handoff to its worker.
            Err(_) => std::thread::sleep(Duration::from_micros(200)),
        }
    };
    handle.cancel();
    let _ = handle.wait();
    let resumed = svc.resume(&checkpoint).expect("valid checkpoint");
    let out = resumed.wait();
    println!(
        "suspended at {} bytes, resumed to {} matches",
        checkpoint.len(),
        out.result.map(|r| r.matches).unwrap_or(0)
    );

    let m = svc.metrics();
    println!("\n-- service metrics --\n{}", m.summary());
    // The traffic/dispatch axes explicitly: modeled bytes the lane
    // kernels touched, how often the AVX2 path was taken (zero without
    // `--features simd` or on non-AVX2 hosts), and how many shard
    // leases landed on a worker already holding the shard's page.
    println!(
        "warp bytes touched: {} ({:.3} MB)",
        m.engine.warp.bytes_touched,
        m.engine.warp.bytes_touched as f64 / (1 << 20) as f64
    );
    println!(
        "intersect dispatch: {} simd / {} scalar",
        m.simd_intersections, m.scalar_intersections
    );
    println!("lease affinity hits: {}", m.lease_affinity_hits);
    svc.shutdown();
}
