//! Social-network motif census — the workload class that motivates the
//! paper's introduction (social network analysis via subgraph search).
//!
//! Generates a power-law "social network", then counts a family of
//! 4–6-vertex motifs with the T-DFS engine, reporting per-motif counts,
//! run times, and load-balancing activity (timeouts fired / tasks
//! decomposed), so you can watch the straggler elimination work on a
//! skewed degree distribution.
//!
//! ```sh
//! cargo run --release --example social_motifs
//! ```

use tdfs::core::{match_pattern, MatcherConfig};
use tdfs::graph::generators::barabasi_albert;
use tdfs::graph::GraphStats;
use tdfs::query::PatternId;

fn main() {
    let g = barabasi_albert(8_000, 4, 0x50C1A1);
    let stats = GraphStats::of(&g);
    println!("{}", stats.table_row("social_net"));
    println!();
    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>9} {:>9}",
        "motif", "vertices", "subgraphs", "time(ms)", "timeouts", "tasks"
    );

    let cfg = MatcherConfig::tdfs();
    for id in PatternId::unlabeled() {
        let p = id.pattern();
        // Skip the heaviest 6-cycles on big runs if you are in a hurry —
        // they are exactly the stragglers the timeout mechanism targets.
        let r = match_pattern(&g, &p, &cfg).expect("matching failed");
        println!(
            "{:<6} {:>10} {:>12} {:>10.1} {:>9} {:>9}",
            id.name(),
            p.num_vertices(),
            r.matches,
            r.millis(),
            r.stats.timeouts_fired,
            r.stats.tasks_enqueued
        );
    }
}
