//! Standing-query demo: fraud-ring monitoring over a transaction graph
//! that changes in batches. A diamond pattern (two accounts transacting
//! through two shared intermediaries) is registered as a standing query;
//! every applied edge batch then produces an exact match delta — new
//! rings surface the moment their closing edge lands, with the
//! embeddings naming the accounts, and rings broken by a removed edge
//! are retracted. The graph is periodically compacted without
//! interrupting the stream.
//!
//! ```sh
//! cargo run --release --example standing_fraud
//! ```

use std::sync::Arc;

use tdfs::core::MatcherConfig;
use tdfs::graph::generators::barabasi_albert;
use tdfs::graph::rng::Rng;
use tdfs::graph::{EdgeBatch, GraphView};
use tdfs::query::Pattern;
use tdfs::service::{Service, ServiceConfig, StandingRequest};

fn main() {
    let svc = Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 32,
        plan_cache_capacity: 16,
        ..ServiceConfig::default()
    });

    // The transaction graph so far: accounts are vertices, an edge is
    // "these two accounts have transacted".
    let ledger = Arc::new(barabasi_albert(5000, 4, 2024));
    let n = ledger.num_vertices() as u32;
    svc.register_graph("ledger", ledger);

    // The watched shape: a 4-cycle — a ring of transactions with no
    // direct edge between the opposite corners.
    let ring = Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    svc.register_standing(
        StandingRequest::new("ledger", ring)
            .with_config(MatcherConfig::tdfs().with_warps(2))
            .with_embeddings(),
        |delta| {
            println!(
                "v{}: +{} rings, -{} rings",
                delta.version, delta.added, delta.removed
            );
            for ring in delta.added_embeddings.iter().flatten().take(3) {
                println!("  new ring: accounts {ring:?}");
            }
            for ring in delta.removed_embeddings.iter().flatten().take(3) {
                println!("  retracted: accounts {ring:?}");
            }
        },
    )
    .expect("ledger is registered");

    // Ingest: settlement batches arrive — mostly new transactions, a few
    // chargebacks (edge deletions).
    let mut rng = Rng::seed_from_u64(7);
    for batch_no in 0..6 {
        let mut batch = EdgeBatch::new();
        for _ in 0..40 {
            batch = batch.insert(rng.gen_range_u32(0..n), rng.gen_range_u32(0..n));
        }
        let view = svc.catalog().get("ledger").unwrap();
        let live: Vec<(u32, u32)> = view.arcs().filter(|&(u, v)| u < v).take(500).collect();
        for _ in 0..3 {
            let (u, v) = live[rng.gen_range(0..live.len())];
            batch = batch.delete(u, v);
        }
        let report = svc.apply("ledger", &batch).expect("batch applies");
        println!(
            "batch {batch_no}: {} inserted, {} deleted -> version {}",
            report.inserted, report.deleted, report.version
        );

        // Fold the overlay back into a flat CSR every few batches; the
        // version (and thus running queries and snapshots) is untouched.
        if batch_no % 3 == 2 {
            let v = svc.compact_graph("ledger").expect("compacts");
            println!("compacted at version {v}");
        }
    }

    println!("\n-- service metrics --\n{}", svc.metrics().summary());
    svc.shutdown();
}
