//! `tdfs` — command-line subgraph matcher.
//!
//! ```text
//! tdfs --graph edges.txt --pattern P3 [options]
//! tdfs --dataset youtube_s --pattern P8 --engine tdfs --warps 8
//! tdfs --graph edges.txt --pattern-edges "0-1,1-2,2-0" --show 5
//! ```
//!
//! Options:
//!   --graph <path>          SNAP-style edge list (u v per line, # comments)
//!   --labels <path>         optional labels file (v label per line)
//!   --dataset <name>        built-in synthetic dataset instead of --graph
//!   --pattern <P1..P22>     catalogue pattern
//!   --pattern-edges <spec>  custom pattern: "0-1,1-2,2-0[;l0,l1,l2]"
//!   --engine <name>         tdfs | nosteal | stmatch | egsm | pbe | hybrid
//!                           (default tdfs)
//!   --warps <n>             warps (default: available cores)
//!   --tau-ms <n>            timeout threshold in ms (tdfs engine)
//!   --time-limit-s <n>      abort after n seconds
//!   --devices <n>           simulated devices (round-robin edges)
//!   --show <n>              print up to n concrete matches
//!   --stats                 print full run statistics

use std::process::ExitCode;

use tdfs::core::{find_matches, match_plan, run_multi_device, MatcherConfig, Strategy};
use tdfs::graph::{datasets::DatasetId, io, CsrGraph, GraphStats};
use tdfs::query::plan::QueryPlan;
use tdfs::query::{Pattern, PatternId};

struct Args {
    graph: Option<String>,
    labels: Option<String>,
    dataset: Option<String>,
    pattern: Option<String>,
    pattern_edges: Option<String>,
    engine: String,
    warps: Option<usize>,
    tau_ms: Option<u64>,
    time_limit_s: Option<f64>,
    devices: usize,
    show: usize,
    stats: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        graph: None,
        labels: None,
        dataset: None,
        pattern: None,
        pattern_edges: None,
        engine: "tdfs".into(),
        warps: None,
        tau_ms: None,
        time_limit_s: None,
        devices: 1,
        show: 0,
        stats: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--graph" => a.graph = Some(val("--graph")?),
            "--labels" => a.labels = Some(val("--labels")?),
            "--dataset" => a.dataset = Some(val("--dataset")?),
            "--pattern" => a.pattern = Some(val("--pattern")?),
            "--pattern-edges" => a.pattern_edges = Some(val("--pattern-edges")?),
            "--engine" => a.engine = val("--engine")?,
            "--warps" => {
                a.warps = Some(
                    val("--warps")?
                        .parse()
                        .map_err(|e| format!("--warps: {e}"))?,
                )
            }
            "--tau-ms" => {
                a.tau_ms = Some(
                    val("--tau-ms")?
                        .parse()
                        .map_err(|e| format!("--tau-ms: {e}"))?,
                )
            }
            "--time-limit-s" => {
                a.time_limit_s = Some(
                    val("--time-limit-s")?
                        .parse()
                        .map_err(|e| format!("--time-limit-s: {e}"))?,
                )
            }
            "--devices" => {
                a.devices = val("--devices")?
                    .parse()
                    .map_err(|e| format!("--devices: {e}"))?
            }
            "--show" => a.show = val("--show")?.parse().map_err(|e| format!("--show: {e}"))?,
            "--stats" => a.stats = true,
            "--help" | "-h" => {
                return Err("usage".into());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(a)
}

fn load_graph(a: &Args) -> Result<CsrGraph, String> {
    if let Some(name) = &a.dataset {
        let id = DatasetId::ALL
            .into_iter()
            .find(|d| d.name() == name)
            .ok_or_else(|| {
                format!(
                    "unknown dataset {name}; available: {}",
                    DatasetId::ALL.map(|d| d.name()).join(", ")
                )
            })?;
        return Ok(id.generate(tdfs::graph::datasets::env_scale()));
    }
    let path = a
        .graph
        .as_ref()
        .ok_or("one of --graph or --dataset is required")?;
    let g = io::read_edge_list_file(path).map_err(|e| format!("reading {path}: {e}"))?;
    match &a.labels {
        Some(lp) => {
            let f = std::fs::File::open(lp).map_err(|e| format!("opening {lp}: {e}"))?;
            io::read_labels(g, std::io::BufReader::new(f)).map_err(|e| format!("labels: {e}"))
        }
        None => Ok(g),
    }
}

fn load_pattern(a: &Args) -> Result<Pattern, String> {
    if let Some(spec) = &a.pattern_edges {
        return parse_pattern_spec(spec);
    }
    let name = a
        .pattern
        .as_ref()
        .ok_or("one of --pattern or --pattern-edges is required")?;
    let id: u8 = name
        .strip_prefix('P')
        .and_then(|n| n.parse().ok())
        .filter(|&n| (1..=22).contains(&n))
        .ok_or_else(|| format!("unknown pattern {name}; use P1..P22 or --pattern-edges"))?;
    Ok(PatternId(id).pattern())
}

/// Parses `"0-1,1-2,2-0"` or `"0-1,1-2,2-0;0,1,0"` (edges; labels).
fn parse_pattern_spec(spec: &str) -> Result<Pattern, String> {
    let (edge_part, label_part) = match spec.split_once(';') {
        Some((e, l)) => (e, Some(l)),
        None => (spec, None),
    };
    let mut edges = Vec::new();
    let mut n = 0usize;
    for e in edge_part.split(',') {
        let (u, v) = e
            .split_once('-')
            .ok_or_else(|| format!("bad edge {e:?}; want u-v"))?;
        let u: usize = u.trim().parse().map_err(|_| format!("bad vertex {u:?}"))?;
        let v: usize = v.trim().parse().map_err(|_| format!("bad vertex {v:?}"))?;
        n = n.max(u + 1).max(v + 1);
        edges.push((u, v));
    }
    let p = match label_part {
        Some(l) => {
            let labels: Result<Vec<u32>, _> = l.split(',').map(|t| t.trim().parse()).collect();
            Pattern::from_edges_labeled(n, &edges, labels.map_err(|_| "bad label list")?)
        }
        None => Pattern::from_edges(n, &edges),
    };
    if !p.is_connected() {
        return Err("pattern must be connected".into());
    }
    Ok(p)
}

fn build_config(a: &Args) -> Result<MatcherConfig, String> {
    let mut cfg = match a.engine.as_str() {
        "tdfs" => MatcherConfig::tdfs(),
        "nosteal" => MatcherConfig::no_steal(),
        "stmatch" => MatcherConfig::stmatch_like(),
        "egsm" => MatcherConfig::egsm_like(),
        "pbe" => MatcherConfig::pbe_like(),
        "hybrid" => MatcherConfig::hybrid(),
        other => return Err(format!("unknown engine {other}")),
    };
    if let Some(w) = a.warps {
        cfg = cfg.with_warps(w);
    }
    if let Some(ms) = a.tau_ms {
        if matches!(cfg.strategy, Strategy::Timeout { .. }) {
            cfg = cfg.with_tau(Some(std::time::Duration::from_millis(ms)));
        }
    }
    if let Some(s) = a.time_limit_s {
        cfg = cfg.with_time_limit(Some(std::time::Duration::from_secs_f64(s)));
    }
    Ok(cfg)
}

fn run(a: Args) -> Result<(), String> {
    let g = load_graph(&a)?;
    let p = load_pattern(&a)?;
    eprintln!("{}", GraphStats::of(&g).table_row("graph"));
    eprintln!(
        "pattern: {} vertices, {} edges{}",
        p.num_vertices(),
        p.num_edges(),
        if p.is_labeled() { ", labeled" } else { "" }
    );
    let cfg = build_config(&a)?;

    if a.devices > 1 {
        let plan = QueryPlan::build_with(&p, cfg.plan);
        let r = run_multi_device(&g, &plan, &cfg, a.devices).map_err(|e| e.to_string())?;
        println!(
            "{} matches in {:.2} ms across {} devices",
            r.matches,
            r.elapsed.as_secs_f64() * 1e3,
            a.devices
        );
        for (d, rr) in r.per_device.iter().enumerate() {
            println!(
                "  device {d}: {} matches, {:.2} ms",
                rr.matches,
                rr.millis()
            );
        }
        return Ok(());
    }

    if a.show > 0 {
        let (r, matches) = find_matches(&g, &p, &cfg, a.show).map_err(|e| e.to_string())?;
        // The run stops early once `show` matches are collected, so the
        // count is a lower bound when that happened.
        let partial = if r.stats.cancelled { "at least " } else { "" };
        println!("{partial}{} matches in {:.2} ms", r.matches, r.millis());
        for m in &matches {
            println!("  {m:?}");
        }
        if a.stats {
            println!("{}", r.stats.summary());
        }
        return Ok(());
    }

    let plan = QueryPlan::build_with(&p, cfg.plan);
    let r = match_plan(&g, &plan, &cfg).map_err(|e| e.to_string())?;
    println!("{} matches in {:.2} ms", r.matches, r.millis());
    if a.stats {
        println!("{}", r.stats.summary());
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(a) => match run(a) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            if e != "usage" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: tdfs (--graph <edges.txt> [--labels <file>] | --dataset <name>)\n\
                 \x20      (--pattern P1..P22 | --pattern-edges \"0-1,1-2,...[;labels]\")\n\
                 \x20      [--engine tdfs|nosteal|stmatch|egsm|pbe|hybrid] [--warps N]\n\
                 \x20      [--tau-ms N] [--time-limit-s N] [--devices N] [--show N] [--stats]"
            );
            if e == "usage" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
