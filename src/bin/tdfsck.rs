//! `tdfsck` — verify (and optionally repair) a T-DFS state directory.
//!
//! ```text
//! tdfsck <state-dir>            # check only, mutate nothing
//! tdfsck --repair <state-dir>   # apply safe remediations
//! ```
//!
//! Checks the intent journal, `MANIFEST`, every `TDFSGRPH` container
//! (full segment verification), every delta sidecar (CRC + overlay
//! fit), every `TDFSSNAP` checkpoint, staging leftovers and orphan
//! files. With `--repair`, journal recovery is applied, corrupt files
//! move to `quarantine/` (nothing is deleted), and the manifest is
//! rebuilt from the containers that verify.
//!
//! Exit codes: `0` clean (info findings allowed), `1` warnings only,
//! `2` errors found (or left unrepaired).

use std::process::ExitCode;

use tdfs::service::fsck::fsck;

fn main() -> ExitCode {
    let mut repair = false;
    let mut dir: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--repair" => repair = true,
            "--help" | "-h" => {
                eprintln!("usage: tdfsck [--repair] <state-dir>");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("tdfsck: unknown option {other:?} (try --help)");
                return ExitCode::from(2);
            }
            other => {
                if dir.replace(other.to_owned()).is_some() {
                    eprintln!("tdfsck: exactly one state directory expected");
                    return ExitCode::from(2);
                }
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("usage: tdfsck [--repair] <state-dir>");
        return ExitCode::from(2);
    };
    let report = match fsck(&dir, repair) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tdfsck: {dir}: {e}");
            return ExitCode::from(2);
        }
    };
    println!("{report}");
    if repair {
        // Repairs applied; what matters is the state we leave behind.
        match fsck(&dir, false) {
            Ok(after) if after.errors() == 0 => {
                println!("tdfsck: directory is consistent after repair");
                if after.warnings() > 0 {
                    return ExitCode::from(1);
                }
                return ExitCode::SUCCESS;
            }
            Ok(after) => {
                eprintln!("tdfsck: {} error(s) remain after repair", after.errors());
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("tdfsck: re-check failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if report.errors() > 0 {
        ExitCode::from(2)
    } else if report.warnings() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
