//! Facade crate re-exporting the full T-DFS workspace.
pub use tdfs_core as core;
pub use tdfs_gpu as gpu;
pub use tdfs_graph as graph;
pub use tdfs_mem as mem;
pub use tdfs_query as query;
pub use tdfs_service as service;
