/root/repo/target/debug/deps/ablation_opts-3f05862714f2c93b.d: crates/bench/benches/ablation_opts.rs Cargo.toml

/root/repo/target/debug/deps/libablation_opts-3f05862714f2c93b.rmeta: crates/bench/benches/ablation_opts.rs Cargo.toml

crates/bench/benches/ablation_opts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
