/root/repo/target/debug/deps/ablation_opts-bba0efea14a9fcf1.d: crates/bench/benches/ablation_opts.rs

/root/repo/target/debug/deps/ablation_opts-bba0efea14a9fcf1: crates/bench/benches/ablation_opts.rs

crates/bench/benches/ablation_opts.rs:
