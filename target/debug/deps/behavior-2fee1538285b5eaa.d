/root/repo/target/debug/deps/behavior-2fee1538285b5eaa.d: crates/core/tests/behavior.rs Cargo.toml

/root/repo/target/debug/deps/libbehavior-2fee1538285b5eaa.rmeta: crates/core/tests/behavior.rs Cargo.toml

crates/core/tests/behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
