/root/repo/target/debug/deps/behavior-5c2bd2ce78228088.d: crates/core/tests/behavior.rs

/root/repo/target/debug/deps/behavior-5c2bd2ce78228088: crates/core/tests/behavior.rs

crates/core/tests/behavior.rs:
