/root/repo/target/debug/deps/cancel-4995e5c0a7d7e7eb.d: crates/core/tests/cancel.rs Cargo.toml

/root/repo/target/debug/deps/libcancel-4995e5c0a7d7e7eb.rmeta: crates/core/tests/cancel.rs Cargo.toml

crates/core/tests/cancel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
