/root/repo/target/debug/deps/cancel-e03864e18df61749.d: crates/core/tests/cancel.rs

/root/repo/target/debug/deps/cancel-e03864e18df61749: crates/core/tests/cancel.rs

crates/core/tests/cancel.rs:
