/root/repo/target/debug/deps/datasets-113bcf528e7e47ee.d: crates/bench/src/bin/datasets.rs Cargo.toml

/root/repo/target/debug/deps/libdatasets-113bcf528e7e47ee.rmeta: crates/bench/src/bin/datasets.rs Cargo.toml

crates/bench/src/bin/datasets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
