/root/repo/target/debug/deps/datasets-1e6c35633f26bf76.d: crates/bench/src/bin/datasets.rs Cargo.toml

/root/repo/target/debug/deps/libdatasets-1e6c35633f26bf76.rmeta: crates/bench/src/bin/datasets.rs Cargo.toml

crates/bench/src/bin/datasets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
