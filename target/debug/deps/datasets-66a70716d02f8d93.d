/root/repo/target/debug/deps/datasets-66a70716d02f8d93.d: crates/bench/src/bin/datasets.rs

/root/repo/target/debug/deps/datasets-66a70716d02f8d93: crates/bench/src/bin/datasets.rs

crates/bench/src/bin/datasets.rs:
