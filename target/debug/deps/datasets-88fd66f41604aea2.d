/root/repo/target/debug/deps/datasets-88fd66f41604aea2.d: crates/bench/src/bin/datasets.rs

/root/repo/target/debug/deps/datasets-88fd66f41604aea2: crates/bench/src/bin/datasets.rs

crates/bench/src/bin/datasets.rs:
