/root/repo/target/debug/deps/emission-64a0e667c047499f.d: crates/core/tests/emission.rs

/root/repo/target/debug/deps/emission-64a0e667c047499f: crates/core/tests/emission.rs

crates/core/tests/emission.rs:
