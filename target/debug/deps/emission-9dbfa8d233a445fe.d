/root/repo/target/debug/deps/emission-9dbfa8d233a445fe.d: crates/core/tests/emission.rs Cargo.toml

/root/repo/target/debug/deps/libemission-9dbfa8d233a445fe.rmeta: crates/core/tests/emission.rs Cargo.toml

crates/core/tests/emission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
