/root/repo/target/debug/deps/engines-e43342e6780c8507.d: crates/core/tests/engines.rs

/root/repo/target/debug/deps/engines-e43342e6780c8507: crates/core/tests/engines.rs

crates/core/tests/engines.rs:
