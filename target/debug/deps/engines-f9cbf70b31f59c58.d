/root/repo/target/debug/deps/engines-f9cbf70b31f59c58.d: crates/core/tests/engines.rs Cargo.toml

/root/repo/target/debug/deps/libengines-f9cbf70b31f59c58.rmeta: crates/core/tests/engines.rs Cargo.toml

crates/core/tests/engines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
