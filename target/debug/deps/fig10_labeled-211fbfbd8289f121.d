/root/repo/target/debug/deps/fig10_labeled-211fbfbd8289f121.d: crates/bench/benches/fig10_labeled.rs

/root/repo/target/debug/deps/fig10_labeled-211fbfbd8289f121: crates/bench/benches/fig10_labeled.rs

crates/bench/benches/fig10_labeled.rs:
