/root/repo/target/debug/deps/fig10_labeled-c2d8e03404e1185c.d: crates/bench/benches/fig10_labeled.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_labeled-c2d8e03404e1185c.rmeta: crates/bench/benches/fig10_labeled.rs Cargo.toml

crates/bench/benches/fig10_labeled.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
