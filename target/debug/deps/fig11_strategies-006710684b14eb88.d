/root/repo/target/debug/deps/fig11_strategies-006710684b14eb88.d: crates/bench/benches/fig11_strategies.rs

/root/repo/target/debug/deps/fig11_strategies-006710684b14eb88: crates/bench/benches/fig11_strategies.rs

crates/bench/benches/fig11_strategies.rs:
