/root/repo/target/debug/deps/fig11_strategies-22b7cee23ca2cbd4.d: crates/bench/benches/fig11_strategies.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_strategies-22b7cee23ca2cbd4.rmeta: crates/bench/benches/fig11_strategies.rs Cargo.toml

crates/bench/benches/fig11_strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
