/root/repo/target/debug/deps/fig12_scaleup-d7fb7c91102192f4.d: crates/bench/benches/fig12_scaleup.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_scaleup-d7fb7c91102192f4.rmeta: crates/bench/benches/fig12_scaleup.rs Cargo.toml

crates/bench/benches/fig12_scaleup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
