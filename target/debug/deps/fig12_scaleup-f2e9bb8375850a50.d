/root/repo/target/debug/deps/fig12_scaleup-f2e9bb8375850a50.d: crates/bench/benches/fig12_scaleup.rs

/root/repo/target/debug/deps/fig12_scaleup-f2e9bb8375850a50: crates/bench/benches/fig12_scaleup.rs

crates/bench/benches/fig12_scaleup.rs:
