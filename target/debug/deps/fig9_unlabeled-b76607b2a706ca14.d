/root/repo/target/debug/deps/fig9_unlabeled-b76607b2a706ca14.d: crates/bench/benches/fig9_unlabeled.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_unlabeled-b76607b2a706ca14.rmeta: crates/bench/benches/fig9_unlabeled.rs Cargo.toml

crates/bench/benches/fig9_unlabeled.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
