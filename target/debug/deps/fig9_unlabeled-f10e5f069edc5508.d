/root/repo/target/debug/deps/fig9_unlabeled-f10e5f069edc5508.d: crates/bench/benches/fig9_unlabeled.rs

/root/repo/target/debug/deps/fig9_unlabeled-f10e5f069edc5508: crates/bench/benches/fig9_unlabeled.rs

crates/bench/benches/fig9_unlabeled.rs:
