/root/repo/target/debug/deps/micro-4c5110a674ba8bc7.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-4c5110a674ba8bc7: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
