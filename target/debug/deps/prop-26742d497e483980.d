/root/repo/target/debug/deps/prop-26742d497e483980.d: crates/query/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-26742d497e483980.rmeta: crates/query/tests/prop.rs Cargo.toml

crates/query/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
