/root/repo/target/debug/deps/prop-33b2b1e1613a8eec.d: crates/mem/tests/prop.rs

/root/repo/target/debug/deps/prop-33b2b1e1613a8eec: crates/mem/tests/prop.rs

crates/mem/tests/prop.rs:
