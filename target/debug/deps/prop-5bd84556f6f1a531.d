/root/repo/target/debug/deps/prop-5bd84556f6f1a531.d: crates/graph/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-5bd84556f6f1a531.rmeta: crates/graph/tests/prop.rs Cargo.toml

crates/graph/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
