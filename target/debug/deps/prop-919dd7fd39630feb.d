/root/repo/target/debug/deps/prop-919dd7fd39630feb.d: crates/graph/tests/prop.rs

/root/repo/target/debug/deps/prop-919dd7fd39630feb: crates/graph/tests/prop.rs

crates/graph/tests/prop.rs:
