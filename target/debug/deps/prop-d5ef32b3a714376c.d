/root/repo/target/debug/deps/prop-d5ef32b3a714376c.d: crates/gpu/tests/prop.rs

/root/repo/target/debug/deps/prop-d5ef32b3a714376c: crates/gpu/tests/prop.rs

crates/gpu/tests/prop.rs:
