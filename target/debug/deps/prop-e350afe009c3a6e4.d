/root/repo/target/debug/deps/prop-e350afe009c3a6e4.d: crates/query/tests/prop.rs

/root/repo/target/debug/deps/prop-e350afe009c3a6e4: crates/query/tests/prop.rs

crates/query/tests/prop.rs:
