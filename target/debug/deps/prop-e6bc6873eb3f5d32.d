/root/repo/target/debug/deps/prop-e6bc6873eb3f5d32.d: crates/mem/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-e6bc6873eb3f5d32.rmeta: crates/mem/tests/prop.rs Cargo.toml

crates/mem/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
