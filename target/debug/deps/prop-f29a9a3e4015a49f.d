/root/repo/target/debug/deps/prop-f29a9a3e4015a49f.d: crates/gpu/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-f29a9a3e4015a49f.rmeta: crates/gpu/tests/prop.rs Cargo.toml

crates/gpu/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
