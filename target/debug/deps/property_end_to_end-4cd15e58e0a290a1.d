/root/repo/target/debug/deps/property_end_to_end-4cd15e58e0a290a1.d: tests/property_end_to_end.rs

/root/repo/target/debug/deps/property_end_to_end-4cd15e58e0a290a1: tests/property_end_to_end.rs

tests/property_end_to_end.rs:
