/root/repo/target/debug/deps/property_end_to_end-b0e5975ae8b3b901.d: tests/property_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_end_to_end-b0e5975ae8b3b901.rmeta: tests/property_end_to_end.rs Cargo.toml

tests/property_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
