/root/repo/target/debug/deps/stress-08decca762897c7f.d: crates/service/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-08decca762897c7f.rmeta: crates/service/tests/stress.rs Cargo.toml

crates/service/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
