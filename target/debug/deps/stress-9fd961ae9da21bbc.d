/root/repo/target/debug/deps/stress-9fd961ae9da21bbc.d: crates/service/tests/stress.rs

/root/repo/target/debug/deps/stress-9fd961ae9da21bbc: crates/service/tests/stress.rs

crates/service/tests/stress.rs:
