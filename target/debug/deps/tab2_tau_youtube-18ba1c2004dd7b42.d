/root/repo/target/debug/deps/tab2_tau_youtube-18ba1c2004dd7b42.d: crates/bench/benches/tab2_tau_youtube.rs Cargo.toml

/root/repo/target/debug/deps/libtab2_tau_youtube-18ba1c2004dd7b42.rmeta: crates/bench/benches/tab2_tau_youtube.rs Cargo.toml

crates/bench/benches/tab2_tau_youtube.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
