/root/repo/target/debug/deps/tab2_tau_youtube-5d8e44d71c4bd7b7.d: crates/bench/benches/tab2_tau_youtube.rs

/root/repo/target/debug/deps/tab2_tau_youtube-5d8e44d71c4bd7b7: crates/bench/benches/tab2_tau_youtube.rs

crates/bench/benches/tab2_tau_youtube.rs:
