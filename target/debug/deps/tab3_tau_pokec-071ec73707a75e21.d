/root/repo/target/debug/deps/tab3_tau_pokec-071ec73707a75e21.d: crates/bench/benches/tab3_tau_pokec.rs Cargo.toml

/root/repo/target/debug/deps/libtab3_tau_pokec-071ec73707a75e21.rmeta: crates/bench/benches/tab3_tau_pokec.rs Cargo.toml

crates/bench/benches/tab3_tau_pokec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
