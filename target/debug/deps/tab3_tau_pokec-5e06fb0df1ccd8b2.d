/root/repo/target/debug/deps/tab3_tau_pokec-5e06fb0df1ccd8b2.d: crates/bench/benches/tab3_tau_pokec.rs

/root/repo/target/debug/deps/tab3_tau_pokec-5e06fb0df1ccd8b2: crates/bench/benches/tab3_tau_pokec.rs

crates/bench/benches/tab3_tau_pokec.rs:
