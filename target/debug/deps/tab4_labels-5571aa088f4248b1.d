/root/repo/target/debug/deps/tab4_labels-5571aa088f4248b1.d: crates/bench/benches/tab4_labels.rs

/root/repo/target/debug/deps/tab4_labels-5571aa088f4248b1: crates/bench/benches/tab4_labels.rs

crates/bench/benches/tab4_labels.rs:
