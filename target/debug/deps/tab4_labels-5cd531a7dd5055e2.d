/root/repo/target/debug/deps/tab4_labels-5cd531a7dd5055e2.d: crates/bench/benches/tab4_labels.rs Cargo.toml

/root/repo/target/debug/deps/libtab4_labels-5cd531a7dd5055e2.rmeta: crates/bench/benches/tab4_labels.rs Cargo.toml

crates/bench/benches/tab4_labels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
