/root/repo/target/debug/deps/tab56_memory_pokec-41d59207ec813c3e.d: crates/bench/benches/tab56_memory_pokec.rs

/root/repo/target/debug/deps/tab56_memory_pokec-41d59207ec813c3e: crates/bench/benches/tab56_memory_pokec.rs

crates/bench/benches/tab56_memory_pokec.rs:
