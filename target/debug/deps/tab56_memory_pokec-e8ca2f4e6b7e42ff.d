/root/repo/target/debug/deps/tab56_memory_pokec-e8ca2f4e6b7e42ff.d: crates/bench/benches/tab56_memory_pokec.rs Cargo.toml

/root/repo/target/debug/deps/libtab56_memory_pokec-e8ca2f4e6b7e42ff.rmeta: crates/bench/benches/tab56_memory_pokec.rs Cargo.toml

crates/bench/benches/tab56_memory_pokec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
