/root/repo/target/debug/deps/tab78_memory_youtube-cb9dad4f1aa009d7.d: crates/bench/benches/tab78_memory_youtube.rs Cargo.toml

/root/repo/target/debug/deps/libtab78_memory_youtube-cb9dad4f1aa009d7.rmeta: crates/bench/benches/tab78_memory_youtube.rs Cargo.toml

crates/bench/benches/tab78_memory_youtube.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
