/root/repo/target/debug/deps/tab78_memory_youtube-f6c730c2c251ca66.d: crates/bench/benches/tab78_memory_youtube.rs

/root/repo/target/debug/deps/tab78_memory_youtube-f6c730c2c251ca66: crates/bench/benches/tab78_memory_youtube.rs

crates/bench/benches/tab78_memory_youtube.rs:
