/root/repo/target/debug/deps/tdfs-3f5ec890e581caac.d: src/lib.rs

/root/repo/target/debug/deps/libtdfs-3f5ec890e581caac.rlib: src/lib.rs

/root/repo/target/debug/deps/libtdfs-3f5ec890e581caac.rmeta: src/lib.rs

src/lib.rs:
