/root/repo/target/debug/deps/tdfs-52e1d19626c6b930.d: src/bin/tdfs.rs

/root/repo/target/debug/deps/tdfs-52e1d19626c6b930: src/bin/tdfs.rs

src/bin/tdfs.rs:
