/root/repo/target/debug/deps/tdfs-9921dbf81ab7ee44.d: src/bin/tdfs.rs

/root/repo/target/debug/deps/tdfs-9921dbf81ab7ee44: src/bin/tdfs.rs

src/bin/tdfs.rs:
