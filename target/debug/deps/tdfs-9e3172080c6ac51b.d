/root/repo/target/debug/deps/tdfs-9e3172080c6ac51b.d: src/bin/tdfs.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs-9e3172080c6ac51b.rmeta: src/bin/tdfs.rs Cargo.toml

src/bin/tdfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
