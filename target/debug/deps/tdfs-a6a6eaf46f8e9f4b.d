/root/repo/target/debug/deps/tdfs-a6a6eaf46f8e9f4b.d: src/lib.rs

/root/repo/target/debug/deps/tdfs-a6a6eaf46f8e9f4b: src/lib.rs

src/lib.rs:
