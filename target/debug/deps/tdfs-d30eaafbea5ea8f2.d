/root/repo/target/debug/deps/tdfs-d30eaafbea5ea8f2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs-d30eaafbea5ea8f2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
