/root/repo/target/debug/deps/tdfs-da7d88bfd57eb33e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs-da7d88bfd57eb33e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
