/root/repo/target/debug/deps/tdfs-df5f7aa244b4f805.d: src/bin/tdfs.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs-df5f7aa244b4f805.rmeta: src/bin/tdfs.rs Cargo.toml

src/bin/tdfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
