/root/repo/target/debug/deps/tdfs_bench-36074e39f3ae774d.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs_bench-36074e39f3ae774d.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
