/root/repo/target/debug/deps/tdfs_bench-a879eec520f3d03d.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/tdfs_bench-a879eec520f3d03d: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
