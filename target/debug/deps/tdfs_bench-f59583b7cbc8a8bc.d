/root/repo/target/debug/deps/tdfs_bench-f59583b7cbc8a8bc.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtdfs_bench-f59583b7cbc8a8bc.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libtdfs_bench-f59583b7cbc8a8bc.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
