/root/repo/target/debug/deps/tdfs_bench-f7b8eea9f4a943d1.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs_bench-f7b8eea9f4a943d1.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
