/root/repo/target/debug/deps/tdfs_core-214d821b6e7c8dd4.d: crates/core/src/lib.rs crates/core/src/bfs.rs crates/core/src/cancel.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/half_steal.rs crates/core/src/hybrid.rs crates/core/src/multi.rs crates/core/src/reference.rs crates/core/src/sink.rs crates/core/src/stack.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs_core-214d821b6e7c8dd4.rmeta: crates/core/src/lib.rs crates/core/src/bfs.rs crates/core/src/cancel.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/half_steal.rs crates/core/src/hybrid.rs crates/core/src/multi.rs crates/core/src/reference.rs crates/core/src/sink.rs crates/core/src/stack.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bfs.rs:
crates/core/src/cancel.rs:
crates/core/src/candidates.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/half_steal.rs:
crates/core/src/hybrid.rs:
crates/core/src/multi.rs:
crates/core/src/reference.rs:
crates/core/src/sink.rs:
crates/core/src/stack.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
