/root/repo/target/debug/deps/tdfs_core-bb415853dcd311b0.d: crates/core/src/lib.rs crates/core/src/bfs.rs crates/core/src/cancel.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/half_steal.rs crates/core/src/hybrid.rs crates/core/src/multi.rs crates/core/src/reference.rs crates/core/src/sink.rs crates/core/src/stack.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libtdfs_core-bb415853dcd311b0.rlib: crates/core/src/lib.rs crates/core/src/bfs.rs crates/core/src/cancel.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/half_steal.rs crates/core/src/hybrid.rs crates/core/src/multi.rs crates/core/src/reference.rs crates/core/src/sink.rs crates/core/src/stack.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libtdfs_core-bb415853dcd311b0.rmeta: crates/core/src/lib.rs crates/core/src/bfs.rs crates/core/src/cancel.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/half_steal.rs crates/core/src/hybrid.rs crates/core/src/multi.rs crates/core/src/reference.rs crates/core/src/sink.rs crates/core/src/stack.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/bfs.rs:
crates/core/src/cancel.rs:
crates/core/src/candidates.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/half_steal.rs:
crates/core/src/hybrid.rs:
crates/core/src/multi.rs:
crates/core/src/reference.rs:
crates/core/src/sink.rs:
crates/core/src/stack.rs:
crates/core/src/stats.rs:
