/root/repo/target/debug/deps/tdfs_gpu-2d2373a46f09653f.d: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/device.rs crates/gpu/src/queue.rs crates/gpu/src/warp.rs

/root/repo/target/debug/deps/libtdfs_gpu-2d2373a46f09653f.rlib: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/device.rs crates/gpu/src/queue.rs crates/gpu/src/warp.rs

/root/repo/target/debug/deps/libtdfs_gpu-2d2373a46f09653f.rmeta: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/device.rs crates/gpu/src/queue.rs crates/gpu/src/warp.rs

crates/gpu/src/lib.rs:
crates/gpu/src/clock.rs:
crates/gpu/src/device.rs:
crates/gpu/src/queue.rs:
crates/gpu/src/warp.rs:
