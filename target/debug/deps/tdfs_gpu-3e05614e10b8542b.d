/root/repo/target/debug/deps/tdfs_gpu-3e05614e10b8542b.d: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/device.rs crates/gpu/src/queue.rs crates/gpu/src/warp.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs_gpu-3e05614e10b8542b.rmeta: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/device.rs crates/gpu/src/queue.rs crates/gpu/src/warp.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/clock.rs:
crates/gpu/src/device.rs:
crates/gpu/src/queue.rs:
crates/gpu/src/warp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
