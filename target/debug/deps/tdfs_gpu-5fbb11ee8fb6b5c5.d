/root/repo/target/debug/deps/tdfs_gpu-5fbb11ee8fb6b5c5.d: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/device.rs crates/gpu/src/queue.rs crates/gpu/src/warp.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs_gpu-5fbb11ee8fb6b5c5.rmeta: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/device.rs crates/gpu/src/queue.rs crates/gpu/src/warp.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/clock.rs:
crates/gpu/src/device.rs:
crates/gpu/src/queue.rs:
crates/gpu/src/warp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
