/root/repo/target/debug/deps/tdfs_gpu-ea068e1c58ffd9da.d: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/device.rs crates/gpu/src/queue.rs crates/gpu/src/warp.rs

/root/repo/target/debug/deps/tdfs_gpu-ea068e1c58ffd9da: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/device.rs crates/gpu/src/queue.rs crates/gpu/src/warp.rs

crates/gpu/src/lib.rs:
crates/gpu/src/clock.rs:
crates/gpu/src/device.rs:
crates/gpu/src/queue.rs:
crates/gpu/src/warp.rs:
