/root/repo/target/debug/deps/tdfs_graph-02a99d7940838ddd.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/intersect.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/transform.rs

/root/repo/target/debug/deps/libtdfs_graph-02a99d7940838ddd.rlib: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/intersect.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/transform.rs

/root/repo/target/debug/deps/libtdfs_graph-02a99d7940838ddd.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/intersect.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/transform.rs

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/datasets.rs:
crates/graph/src/generators.rs:
crates/graph/src/intersect.rs:
crates/graph/src/io.rs:
crates/graph/src/rng.rs:
crates/graph/src/stats.rs:
crates/graph/src/transform.rs:
