/root/repo/target/debug/deps/tdfs_graph-2752cdf298d8a2dd.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/intersect.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs_graph-2752cdf298d8a2dd.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/intersect.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/transform.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/datasets.rs:
crates/graph/src/generators.rs:
crates/graph/src/intersect.rs:
crates/graph/src/io.rs:
crates/graph/src/rng.rs:
crates/graph/src/stats.rs:
crates/graph/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
