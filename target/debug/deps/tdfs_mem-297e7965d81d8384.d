/root/repo/target/debug/deps/tdfs_mem-297e7965d81d8384.d: crates/mem/src/lib.rs crates/mem/src/arena.rs crates/mem/src/level.rs crates/mem/src/paged.rs

/root/repo/target/debug/deps/libtdfs_mem-297e7965d81d8384.rlib: crates/mem/src/lib.rs crates/mem/src/arena.rs crates/mem/src/level.rs crates/mem/src/paged.rs

/root/repo/target/debug/deps/libtdfs_mem-297e7965d81d8384.rmeta: crates/mem/src/lib.rs crates/mem/src/arena.rs crates/mem/src/level.rs crates/mem/src/paged.rs

crates/mem/src/lib.rs:
crates/mem/src/arena.rs:
crates/mem/src/level.rs:
crates/mem/src/paged.rs:
