/root/repo/target/debug/deps/tdfs_mem-3ebfb33c6367648f.d: crates/mem/src/lib.rs crates/mem/src/arena.rs crates/mem/src/level.rs crates/mem/src/paged.rs

/root/repo/target/debug/deps/tdfs_mem-3ebfb33c6367648f: crates/mem/src/lib.rs crates/mem/src/arena.rs crates/mem/src/level.rs crates/mem/src/paged.rs

crates/mem/src/lib.rs:
crates/mem/src/arena.rs:
crates/mem/src/level.rs:
crates/mem/src/paged.rs:
