/root/repo/target/debug/deps/tdfs_mem-76a81eae80195b81.d: crates/mem/src/lib.rs crates/mem/src/arena.rs crates/mem/src/level.rs crates/mem/src/paged.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs_mem-76a81eae80195b81.rmeta: crates/mem/src/lib.rs crates/mem/src/arena.rs crates/mem/src/level.rs crates/mem/src/paged.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/arena.rs:
crates/mem/src/level.rs:
crates/mem/src/paged.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
