/root/repo/target/debug/deps/tdfs_query-5f2394f9649e1d12.d: crates/query/src/lib.rs crates/query/src/automorphism.rs crates/query/src/order.rs crates/query/src/pattern.rs crates/query/src/patterns.rs crates/query/src/plan.rs crates/query/src/reuse.rs crates/query/src/symmetry.rs

/root/repo/target/debug/deps/libtdfs_query-5f2394f9649e1d12.rlib: crates/query/src/lib.rs crates/query/src/automorphism.rs crates/query/src/order.rs crates/query/src/pattern.rs crates/query/src/patterns.rs crates/query/src/plan.rs crates/query/src/reuse.rs crates/query/src/symmetry.rs

/root/repo/target/debug/deps/libtdfs_query-5f2394f9649e1d12.rmeta: crates/query/src/lib.rs crates/query/src/automorphism.rs crates/query/src/order.rs crates/query/src/pattern.rs crates/query/src/patterns.rs crates/query/src/plan.rs crates/query/src/reuse.rs crates/query/src/symmetry.rs

crates/query/src/lib.rs:
crates/query/src/automorphism.rs:
crates/query/src/order.rs:
crates/query/src/pattern.rs:
crates/query/src/patterns.rs:
crates/query/src/plan.rs:
crates/query/src/reuse.rs:
crates/query/src/symmetry.rs:
