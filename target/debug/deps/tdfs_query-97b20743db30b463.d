/root/repo/target/debug/deps/tdfs_query-97b20743db30b463.d: crates/query/src/lib.rs crates/query/src/automorphism.rs crates/query/src/order.rs crates/query/src/pattern.rs crates/query/src/patterns.rs crates/query/src/plan.rs crates/query/src/reuse.rs crates/query/src/symmetry.rs

/root/repo/target/debug/deps/tdfs_query-97b20743db30b463: crates/query/src/lib.rs crates/query/src/automorphism.rs crates/query/src/order.rs crates/query/src/pattern.rs crates/query/src/patterns.rs crates/query/src/plan.rs crates/query/src/reuse.rs crates/query/src/symmetry.rs

crates/query/src/lib.rs:
crates/query/src/automorphism.rs:
crates/query/src/order.rs:
crates/query/src/pattern.rs:
crates/query/src/patterns.rs:
crates/query/src/plan.rs:
crates/query/src/reuse.rs:
crates/query/src/symmetry.rs:
