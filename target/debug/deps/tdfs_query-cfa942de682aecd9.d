/root/repo/target/debug/deps/tdfs_query-cfa942de682aecd9.d: crates/query/src/lib.rs crates/query/src/automorphism.rs crates/query/src/order.rs crates/query/src/pattern.rs crates/query/src/patterns.rs crates/query/src/plan.rs crates/query/src/reuse.rs crates/query/src/symmetry.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs_query-cfa942de682aecd9.rmeta: crates/query/src/lib.rs crates/query/src/automorphism.rs crates/query/src/order.rs crates/query/src/pattern.rs crates/query/src/patterns.rs crates/query/src/plan.rs crates/query/src/reuse.rs crates/query/src/symmetry.rs Cargo.toml

crates/query/src/lib.rs:
crates/query/src/automorphism.rs:
crates/query/src/order.rs:
crates/query/src/pattern.rs:
crates/query/src/patterns.rs:
crates/query/src/plan.rs:
crates/query/src/reuse.rs:
crates/query/src/symmetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
