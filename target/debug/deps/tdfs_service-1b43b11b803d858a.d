/root/repo/target/debug/deps/tdfs_service-1b43b11b803d858a.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/canon.rs crates/service/src/catalog.rs crates/service/src/service.rs

/root/repo/target/debug/deps/libtdfs_service-1b43b11b803d858a.rlib: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/canon.rs crates/service/src/catalog.rs crates/service/src/service.rs

/root/repo/target/debug/deps/libtdfs_service-1b43b11b803d858a.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/canon.rs crates/service/src/catalog.rs crates/service/src/service.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/canon.rs:
crates/service/src/catalog.rs:
crates/service/src/service.rs:
