/root/repo/target/debug/deps/tdfs_service-9c2e3062aa70c6ea.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/canon.rs crates/service/src/catalog.rs crates/service/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs_service-9c2e3062aa70c6ea.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/canon.rs crates/service/src/catalog.rs crates/service/src/service.rs Cargo.toml

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/canon.rs:
crates/service/src/catalog.rs:
crates/service/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
