/root/repo/target/debug/deps/tdfs_service-d42ab6f5f097091b.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/canon.rs crates/service/src/catalog.rs crates/service/src/service.rs

/root/repo/target/debug/deps/tdfs_service-d42ab6f5f097091b: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/canon.rs crates/service/src/catalog.rs crates/service/src/service.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/canon.rs:
crates/service/src/catalog.rs:
crates/service/src/service.rs:
