/root/repo/target/debug/deps/tdfs_service-ef8499fa5caa746f.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/canon.rs crates/service/src/catalog.rs crates/service/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libtdfs_service-ef8499fa5caa746f.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/canon.rs crates/service/src/catalog.rs crates/service/src/service.rs Cargo.toml

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/canon.rs:
crates/service/src/catalog.rs:
crates/service/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
