/root/repo/target/debug/deps/workspace_integration-77bd14a28461b701.d: tests/workspace_integration.rs Cargo.toml

/root/repo/target/debug/deps/libworkspace_integration-77bd14a28461b701.rmeta: tests/workspace_integration.rs Cargo.toml

tests/workspace_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
