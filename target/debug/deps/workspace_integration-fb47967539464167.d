/root/repo/target/debug/deps/workspace_integration-fb47967539464167.d: tests/workspace_integration.rs

/root/repo/target/debug/deps/workspace_integration-fb47967539464167: tests/workspace_integration.rs

tests/workspace_integration.rs:
