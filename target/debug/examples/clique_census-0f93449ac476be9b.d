/root/repo/target/debug/examples/clique_census-0f93449ac476be9b.d: examples/clique_census.rs

/root/repo/target/debug/examples/clique_census-0f93449ac476be9b: examples/clique_census.rs

examples/clique_census.rs:
