/root/repo/target/debug/examples/clique_census-413e78365a51f06a.d: examples/clique_census.rs Cargo.toml

/root/repo/target/debug/examples/libclique_census-413e78365a51f06a.rmeta: examples/clique_census.rs Cargo.toml

examples/clique_census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
