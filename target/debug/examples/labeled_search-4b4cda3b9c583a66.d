/root/repo/target/debug/examples/labeled_search-4b4cda3b9c583a66.d: examples/labeled_search.rs Cargo.toml

/root/repo/target/debug/examples/liblabeled_search-4b4cda3b9c583a66.rmeta: examples/labeled_search.rs Cargo.toml

examples/labeled_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
