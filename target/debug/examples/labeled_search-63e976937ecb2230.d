/root/repo/target/debug/examples/labeled_search-63e976937ecb2230.d: examples/labeled_search.rs

/root/repo/target/debug/examples/labeled_search-63e976937ecb2230: examples/labeled_search.rs

examples/labeled_search.rs:
