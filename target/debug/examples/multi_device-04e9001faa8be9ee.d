/root/repo/target/debug/examples/multi_device-04e9001faa8be9ee.d: examples/multi_device.rs

/root/repo/target/debug/examples/multi_device-04e9001faa8be9ee: examples/multi_device.rs

examples/multi_device.rs:
