/root/repo/target/debug/examples/multi_device-56b695043df37b28.d: examples/multi_device.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_device-56b695043df37b28.rmeta: examples/multi_device.rs Cargo.toml

examples/multi_device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
