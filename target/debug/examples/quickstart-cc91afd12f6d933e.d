/root/repo/target/debug/examples/quickstart-cc91afd12f6d933e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cc91afd12f6d933e: examples/quickstart.rs

examples/quickstart.rs:
