/root/repo/target/debug/examples/serve-631b111ec4cd34d4.d: examples/serve.rs

/root/repo/target/debug/examples/serve-631b111ec4cd34d4: examples/serve.rs

examples/serve.rs:
