/root/repo/target/debug/examples/serve-a061e318e5dfdf2b.d: examples/serve.rs Cargo.toml

/root/repo/target/debug/examples/libserve-a061e318e5dfdf2b.rmeta: examples/serve.rs Cargo.toml

examples/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
