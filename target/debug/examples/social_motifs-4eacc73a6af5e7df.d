/root/repo/target/debug/examples/social_motifs-4eacc73a6af5e7df.d: examples/social_motifs.rs

/root/repo/target/debug/examples/social_motifs-4eacc73a6af5e7df: examples/social_motifs.rs

examples/social_motifs.rs:
