/root/repo/target/debug/examples/social_motifs-90541a542a1cebff.d: examples/social_motifs.rs Cargo.toml

/root/repo/target/debug/examples/libsocial_motifs-90541a542a1cebff.rmeta: examples/social_motifs.rs Cargo.toml

examples/social_motifs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
