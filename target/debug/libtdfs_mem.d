/root/repo/target/debug/libtdfs_mem.rlib: /root/repo/crates/mem/src/arena.rs /root/repo/crates/mem/src/level.rs /root/repo/crates/mem/src/lib.rs /root/repo/crates/mem/src/paged.rs
