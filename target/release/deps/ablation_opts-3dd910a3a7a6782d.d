/root/repo/target/release/deps/ablation_opts-3dd910a3a7a6782d.d: crates/bench/benches/ablation_opts.rs

/root/repo/target/release/deps/ablation_opts-3dd910a3a7a6782d: crates/bench/benches/ablation_opts.rs

crates/bench/benches/ablation_opts.rs:
