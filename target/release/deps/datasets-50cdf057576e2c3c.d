/root/repo/target/release/deps/datasets-50cdf057576e2c3c.d: crates/bench/src/bin/datasets.rs

/root/repo/target/release/deps/datasets-50cdf057576e2c3c: crates/bench/src/bin/datasets.rs

crates/bench/src/bin/datasets.rs:
