/root/repo/target/release/deps/datasets-5a8baad94f6318b6.d: crates/bench/src/bin/datasets.rs

/root/repo/target/release/deps/datasets-5a8baad94f6318b6: crates/bench/src/bin/datasets.rs

crates/bench/src/bin/datasets.rs:
