/root/repo/target/release/deps/fig10_labeled-7af11b91d7ee5b6c.d: crates/bench/benches/fig10_labeled.rs

/root/repo/target/release/deps/fig10_labeled-7af11b91d7ee5b6c: crates/bench/benches/fig10_labeled.rs

crates/bench/benches/fig10_labeled.rs:
