/root/repo/target/release/deps/fig11_strategies-a4543f4aadd93e5f.d: crates/bench/benches/fig11_strategies.rs

/root/repo/target/release/deps/fig11_strategies-a4543f4aadd93e5f: crates/bench/benches/fig11_strategies.rs

crates/bench/benches/fig11_strategies.rs:
