/root/repo/target/release/deps/fig12_scaleup-e1f9fa7125b2277a.d: crates/bench/benches/fig12_scaleup.rs

/root/repo/target/release/deps/fig12_scaleup-e1f9fa7125b2277a: crates/bench/benches/fig12_scaleup.rs

crates/bench/benches/fig12_scaleup.rs:
