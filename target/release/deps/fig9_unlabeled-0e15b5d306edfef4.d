/root/repo/target/release/deps/fig9_unlabeled-0e15b5d306edfef4.d: crates/bench/benches/fig9_unlabeled.rs

/root/repo/target/release/deps/fig9_unlabeled-0e15b5d306edfef4: crates/bench/benches/fig9_unlabeled.rs

crates/bench/benches/fig9_unlabeled.rs:
