/root/repo/target/release/deps/micro-f0e7649157d2fb3a.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-f0e7649157d2fb3a: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
