/root/repo/target/release/deps/property_end_to_end-3c831a2d2aeb59fb.d: tests/property_end_to_end.rs

/root/repo/target/release/deps/property_end_to_end-3c831a2d2aeb59fb: tests/property_end_to_end.rs

tests/property_end_to_end.rs:
