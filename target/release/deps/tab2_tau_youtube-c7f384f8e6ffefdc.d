/root/repo/target/release/deps/tab2_tau_youtube-c7f384f8e6ffefdc.d: crates/bench/benches/tab2_tau_youtube.rs

/root/repo/target/release/deps/tab2_tau_youtube-c7f384f8e6ffefdc: crates/bench/benches/tab2_tau_youtube.rs

crates/bench/benches/tab2_tau_youtube.rs:
