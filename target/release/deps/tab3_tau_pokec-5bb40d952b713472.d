/root/repo/target/release/deps/tab3_tau_pokec-5bb40d952b713472.d: crates/bench/benches/tab3_tau_pokec.rs

/root/repo/target/release/deps/tab3_tau_pokec-5bb40d952b713472: crates/bench/benches/tab3_tau_pokec.rs

crates/bench/benches/tab3_tau_pokec.rs:
