/root/repo/target/release/deps/tab4_labels-945e661fd456375e.d: crates/bench/benches/tab4_labels.rs

/root/repo/target/release/deps/tab4_labels-945e661fd456375e: crates/bench/benches/tab4_labels.rs

crates/bench/benches/tab4_labels.rs:
