/root/repo/target/release/deps/tab56_memory_pokec-5af7d03f51d82d46.d: crates/bench/benches/tab56_memory_pokec.rs

/root/repo/target/release/deps/tab56_memory_pokec-5af7d03f51d82d46: crates/bench/benches/tab56_memory_pokec.rs

crates/bench/benches/tab56_memory_pokec.rs:
