/root/repo/target/release/deps/tab78_memory_youtube-7010bae8a9b4c660.d: crates/bench/benches/tab78_memory_youtube.rs

/root/repo/target/release/deps/tab78_memory_youtube-7010bae8a9b4c660: crates/bench/benches/tab78_memory_youtube.rs

crates/bench/benches/tab78_memory_youtube.rs:
