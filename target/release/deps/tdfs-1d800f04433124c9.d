/root/repo/target/release/deps/tdfs-1d800f04433124c9.d: src/bin/tdfs.rs

/root/repo/target/release/deps/tdfs-1d800f04433124c9: src/bin/tdfs.rs

src/bin/tdfs.rs:
