/root/repo/target/release/deps/tdfs-716d040c447b1cfb.d: src/lib.rs

/root/repo/target/release/deps/libtdfs-716d040c447b1cfb.rlib: src/lib.rs

/root/repo/target/release/deps/libtdfs-716d040c447b1cfb.rmeta: src/lib.rs

src/lib.rs:
