/root/repo/target/release/deps/tdfs-b546fe5ff8173a92.d: src/bin/tdfs.rs

/root/repo/target/release/deps/tdfs-b546fe5ff8173a92: src/bin/tdfs.rs

src/bin/tdfs.rs:
