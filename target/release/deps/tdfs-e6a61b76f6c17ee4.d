/root/repo/target/release/deps/tdfs-e6a61b76f6c17ee4.d: src/lib.rs

/root/repo/target/release/deps/tdfs-e6a61b76f6c17ee4: src/lib.rs

src/lib.rs:
