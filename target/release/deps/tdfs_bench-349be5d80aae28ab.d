/root/repo/target/release/deps/tdfs_bench-349be5d80aae28ab.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtdfs_bench-349be5d80aae28ab.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libtdfs_bench-349be5d80aae28ab.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
