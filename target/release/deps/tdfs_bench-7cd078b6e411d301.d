/root/repo/target/release/deps/tdfs_bench-7cd078b6e411d301.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/tdfs_bench-7cd078b6e411d301: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
