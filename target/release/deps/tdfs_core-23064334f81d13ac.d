/root/repo/target/release/deps/tdfs_core-23064334f81d13ac.d: crates/core/src/lib.rs crates/core/src/bfs.rs crates/core/src/cancel.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/half_steal.rs crates/core/src/hybrid.rs crates/core/src/multi.rs crates/core/src/reference.rs crates/core/src/sink.rs crates/core/src/stack.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libtdfs_core-23064334f81d13ac.rlib: crates/core/src/lib.rs crates/core/src/bfs.rs crates/core/src/cancel.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/half_steal.rs crates/core/src/hybrid.rs crates/core/src/multi.rs crates/core/src/reference.rs crates/core/src/sink.rs crates/core/src/stack.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libtdfs_core-23064334f81d13ac.rmeta: crates/core/src/lib.rs crates/core/src/bfs.rs crates/core/src/cancel.rs crates/core/src/candidates.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/half_steal.rs crates/core/src/hybrid.rs crates/core/src/multi.rs crates/core/src/reference.rs crates/core/src/sink.rs crates/core/src/stack.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/bfs.rs:
crates/core/src/cancel.rs:
crates/core/src/candidates.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/half_steal.rs:
crates/core/src/hybrid.rs:
crates/core/src/multi.rs:
crates/core/src/reference.rs:
crates/core/src/sink.rs:
crates/core/src/stack.rs:
crates/core/src/stats.rs:
