/root/repo/target/release/deps/tdfs_gpu-56ec56690bdd2225.d: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/device.rs crates/gpu/src/queue.rs crates/gpu/src/warp.rs

/root/repo/target/release/deps/libtdfs_gpu-56ec56690bdd2225.rlib: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/device.rs crates/gpu/src/queue.rs crates/gpu/src/warp.rs

/root/repo/target/release/deps/libtdfs_gpu-56ec56690bdd2225.rmeta: crates/gpu/src/lib.rs crates/gpu/src/clock.rs crates/gpu/src/device.rs crates/gpu/src/queue.rs crates/gpu/src/warp.rs

crates/gpu/src/lib.rs:
crates/gpu/src/clock.rs:
crates/gpu/src/device.rs:
crates/gpu/src/queue.rs:
crates/gpu/src/warp.rs:
