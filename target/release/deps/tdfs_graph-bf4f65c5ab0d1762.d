/root/repo/target/release/deps/tdfs_graph-bf4f65c5ab0d1762.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/intersect.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/transform.rs

/root/repo/target/release/deps/libtdfs_graph-bf4f65c5ab0d1762.rlib: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/intersect.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/transform.rs

/root/repo/target/release/deps/libtdfs_graph-bf4f65c5ab0d1762.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/intersect.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/transform.rs

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/datasets.rs:
crates/graph/src/generators.rs:
crates/graph/src/intersect.rs:
crates/graph/src/io.rs:
crates/graph/src/rng.rs:
crates/graph/src/stats.rs:
crates/graph/src/transform.rs:
