/root/repo/target/release/deps/tdfs_mem-3d168a50559e177c.d: crates/mem/src/lib.rs crates/mem/src/arena.rs crates/mem/src/level.rs crates/mem/src/paged.rs

/root/repo/target/release/deps/libtdfs_mem-3d168a50559e177c.rlib: crates/mem/src/lib.rs crates/mem/src/arena.rs crates/mem/src/level.rs crates/mem/src/paged.rs

/root/repo/target/release/deps/libtdfs_mem-3d168a50559e177c.rmeta: crates/mem/src/lib.rs crates/mem/src/arena.rs crates/mem/src/level.rs crates/mem/src/paged.rs

crates/mem/src/lib.rs:
crates/mem/src/arena.rs:
crates/mem/src/level.rs:
crates/mem/src/paged.rs:
