/root/repo/target/release/deps/tdfs_query-7a814025ff0e2f60.d: crates/query/src/lib.rs crates/query/src/automorphism.rs crates/query/src/order.rs crates/query/src/pattern.rs crates/query/src/patterns.rs crates/query/src/plan.rs crates/query/src/reuse.rs crates/query/src/symmetry.rs

/root/repo/target/release/deps/libtdfs_query-7a814025ff0e2f60.rlib: crates/query/src/lib.rs crates/query/src/automorphism.rs crates/query/src/order.rs crates/query/src/pattern.rs crates/query/src/patterns.rs crates/query/src/plan.rs crates/query/src/reuse.rs crates/query/src/symmetry.rs

/root/repo/target/release/deps/libtdfs_query-7a814025ff0e2f60.rmeta: crates/query/src/lib.rs crates/query/src/automorphism.rs crates/query/src/order.rs crates/query/src/pattern.rs crates/query/src/patterns.rs crates/query/src/plan.rs crates/query/src/reuse.rs crates/query/src/symmetry.rs

crates/query/src/lib.rs:
crates/query/src/automorphism.rs:
crates/query/src/order.rs:
crates/query/src/pattern.rs:
crates/query/src/patterns.rs:
crates/query/src/plan.rs:
crates/query/src/reuse.rs:
crates/query/src/symmetry.rs:
