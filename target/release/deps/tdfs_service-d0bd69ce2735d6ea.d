/root/repo/target/release/deps/tdfs_service-d0bd69ce2735d6ea.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/canon.rs crates/service/src/catalog.rs crates/service/src/service.rs

/root/repo/target/release/deps/libtdfs_service-d0bd69ce2735d6ea.rlib: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/canon.rs crates/service/src/catalog.rs crates/service/src/service.rs

/root/repo/target/release/deps/libtdfs_service-d0bd69ce2735d6ea.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/canon.rs crates/service/src/catalog.rs crates/service/src/service.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/canon.rs:
crates/service/src/catalog.rs:
crates/service/src/service.rs:
