/root/repo/target/release/deps/workspace_integration-0047bde8a4155ae8.d: tests/workspace_integration.rs

/root/repo/target/release/deps/workspace_integration-0047bde8a4155ae8: tests/workspace_integration.rs

tests/workspace_integration.rs:
