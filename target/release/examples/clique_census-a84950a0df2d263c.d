/root/repo/target/release/examples/clique_census-a84950a0df2d263c.d: examples/clique_census.rs

/root/repo/target/release/examples/clique_census-a84950a0df2d263c: examples/clique_census.rs

examples/clique_census.rs:
