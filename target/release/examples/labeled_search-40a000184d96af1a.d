/root/repo/target/release/examples/labeled_search-40a000184d96af1a.d: examples/labeled_search.rs

/root/repo/target/release/examples/labeled_search-40a000184d96af1a: examples/labeled_search.rs

examples/labeled_search.rs:
