/root/repo/target/release/examples/multi_device-7a73890bf4f65fb2.d: examples/multi_device.rs

/root/repo/target/release/examples/multi_device-7a73890bf4f65fb2: examples/multi_device.rs

examples/multi_device.rs:
