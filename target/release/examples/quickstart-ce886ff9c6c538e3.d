/root/repo/target/release/examples/quickstart-ce886ff9c6c538e3.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ce886ff9c6c538e3: examples/quickstart.rs

examples/quickstart.rs:
