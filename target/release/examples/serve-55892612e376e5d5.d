/root/repo/target/release/examples/serve-55892612e376e5d5.d: examples/serve.rs

/root/repo/target/release/examples/serve-55892612e376e5d5: examples/serve.rs

examples/serve.rs:
