/root/repo/target/release/examples/social_motifs-aca5422853cf925c.d: examples/social_motifs.rs

/root/repo/target/release/examples/social_motifs-aca5422853cf925c: examples/social_motifs.rs

examples/social_motifs.rs:
