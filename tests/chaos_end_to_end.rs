//! Full-stack chaos run (requires `--features chaos`): every layer's
//! fault points storm at once — queue claim stalls, clock skew, arena
//! OOM, forced stragglers, and one worker crash — while concurrent
//! clients push queries through the service with admission retries.
//! Every query must end in one of the documented outcomes (exact count,
//! clean partial, or `WorkerPanicked`), and every recovery must be
//! visible in the metrics.
//!
//! The tests hold a `ChaosGuard` because the fault-point registry is
//! process-global; the guard serializes chaos tests within one binary.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tdfs::core::{reference_count, EngineError, MatcherConfig};
use tdfs::graph::generators::barabasi_albert;
use tdfs::query::plan::QueryPlan;
use tdfs::query::Pattern;
use tdfs::service::{QueryRequest, RetryPolicy, Service, ServiceConfig};
use tdfs_testkit::fault::{self, Action, ChaosScript, Trigger};

#[test]
fn service_survives_a_combined_chaos_storm() {
    let _chaos = ChaosScript::new()
        .on(
            "gpu.queue.enqueue.claimed",
            Trigger::Probability(0.05),
            Action::Stall { yields: 10 },
        )
        .on(
            "gpu.queue.dequeue.claimed",
            Trigger::Probability(0.05),
            Action::Stall { yields: 10 },
        )
        .inject("gpu.clock.storm", Trigger::Probability(0.1))
        .inject("mem.arena.oom", Trigger::Probability(0.2))
        .inject("core.dfs.straggler", Trigger::Probability(0.2))
        .on(
            "service.worker.run",
            Trigger::Nth(3),
            Action::Panic("injected mid-storm worker crash"),
        )
        .seed(47)
        .install();

    let g = Arc::new(barabasi_albert(250, 4, 31));
    // A 4-clique: deep enough that the paged levels actually allocate
    // (the fused leaf computes the deepest level in-lane, so a triangle
    // query would never touch the arena).
    let pattern = Pattern::clique(4);
    let want = reference_count(&g, &QueryPlan::build_with(&pattern, Default::default()));

    let svc = Arc::new(Service::new(ServiceConfig {
        workers: 3,
        // Tiny admission queue: the storm's stalls produce real
        // backpressure, driving the retry path.
        queue_capacity: 2,
        plan_cache_capacity: 8,
        ..ServiceConfig::default()
    }));
    svc.register_graph("ba", g.clone());

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 5;
    let policy = RetryPolicy {
        max_retries: 10_000,
        initial_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(5),
    };
    let mut panics = 0u64;
    let mut completed = 0u64;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..CLIENTS {
            let svc = svc.clone();
            let pattern = pattern.clone();
            let policy = policy.clone();
            handles.push(s.spawn(move || {
                let mut outcomes = Vec::new();
                for _ in 0..PER_CLIENT {
                    // Legacy path: the durable path recovers this
                    // storm's scripted crash instead of surfacing
                    // `WorkerPanicked` (covered by the service crate's
                    // chaos_durable tests).
                    let req = QueryRequest::new("ba", pattern.clone())
                        .with_config(MatcherConfig::tdfs().with_warps(2))
                        .with_durable(false);
                    let out = svc
                        .submit_with_retry(req, &policy)
                        .expect("retries absorb transient backpressure")
                        .wait();
                    outcomes.push(out);
                }
                outcomes
            }));
        }
        for h in handles {
            for out in h.join().unwrap() {
                match out.result {
                    Ok(r) => {
                        assert_eq!(r.matches, want, "chaos must not corrupt a count");
                        assert!(!r.stats.cancelled);
                        assert_eq!(r.stats.pages_leaked, 0);
                        completed += 1;
                    }
                    Err(EngineError::WorkerPanicked) => panics += 1,
                    Err(e) => panic!("unexpected failure under chaos: {e}"),
                }
            }
        }
    });

    let total = (CLIENTS * PER_CLIENT) as u64;
    assert_eq!(completed + panics, total);
    assert_eq!(panics, 1, "exactly one scripted crash");

    let m = svc.metrics();
    assert_eq!(m.admitted, total);
    assert_eq!(m.completed, completed);
    assert_eq!(m.failed, 1);
    assert_eq!(m.worker_panics, 1);
    assert_eq!(m.workers_restarted, 1);
    assert_eq!(m.queue_depth, 0);
    // The storm's fault points were all genuinely reached.
    assert_eq!(fault::injections("service.worker.run"), 1);
    assert!(fault::injections("mem.arena.oom") > 0);
    assert!(fault::injections("core.dfs.straggler") > 0);
    assert!(fault::hits("gpu.queue.enqueue.claimed") > 0);
    svc.shutdown();
}

/// Collection with a limit stays a clean partial under the same storms:
/// the outcome is `Ok` + cancelled with exactly `limit` assignments, and
/// it arrives promptly.
#[test]
fn collect_limit_cancels_cleanly_under_chaos() {
    let _chaos = ChaosScript::new()
        .inject("gpu.clock.storm", Trigger::Probability(0.1))
        .inject("mem.arena.oom", Trigger::Probability(0.3))
        .inject("core.dfs.straggler", Trigger::Probability(0.3))
        .seed(53)
        .install();

    let g = Arc::new(barabasi_albert(1000, 8, 17));
    let svc = Service::new(ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        plan_cache_capacity: 4,
        ..ServiceConfig::default()
    });
    svc.register_graph("ba", g);

    let limit = 25;
    let start = Instant::now();
    let out = svc
        .submit(
            QueryRequest::new("ba", Pattern::clique(4))
                .with_config(MatcherConfig::tdfs().with_warps(2))
                .with_collect_limit(limit),
        )
        .unwrap()
        .wait();
    let elapsed = start.elapsed();

    assert!(out.cancelled(), "the limit must cancel the run early");
    let r = out.result.unwrap();
    assert!(r.stats.cancelled && r.matches >= limit as u64);
    assert_eq!(r.stats.pages_leaked, 0);
    let matches = out.matches.expect("collect_limit fills outcome.matches");
    assert_eq!(matches.len(), limit);
    assert!(
        elapsed < Duration::from_secs(30),
        "partial collection took {elapsed:?} under chaos"
    );
    let m = svc.metrics();
    assert_eq!(m.completed, 1);
    assert_eq!(m.cancelled, 1);
    svc.shutdown();
}
