//! End-to-end property tests: for random data graphs and random
//! connected patterns, every engine must agree with the serial
//! reference matcher, under default and adversarial settings.

use proptest::prelude::*;
use std::time::Duration;

use tdfs::core::{match_pattern, reference_count, MatcherConfig};
use tdfs::graph::{CsrGraph, GraphBuilder};
use tdfs::query::plan::QueryPlan;
use tdfs::query::Pattern;

/// Random data graph on up to 40 vertices.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    prop::collection::vec((0u32..40, 0u32..40), 1..250)
        .prop_map(|edges| GraphBuilder::new().num_vertices(40).edges(edges).build())
}

/// Random labeled data graph.
fn arb_labeled_graph() -> impl Strategy<Value = CsrGraph> {
    (arb_graph(), prop::collection::vec(0u32..3, 40))
        .prop_map(|(g, labels)| g.with_labels(labels))
}

/// Random connected pattern on 3–5 vertices (kept small so the serial
/// reference stays fast under proptest's case count).
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    (3usize..=5)
        .prop_flat_map(|n| {
            let tree = prop::collection::vec(0usize..n, n - 1);
            let extra = prop::collection::vec((0usize..n, 0usize..n), 0..n);
            (Just(n), tree, extra)
        })
        .prop_map(|(n, tree, extra)| {
            let mut edges = Vec::new();
            // Spanning tree: vertex v > 0 attaches to a parent below it.
            for v in 1..n {
                edges.push((v, tree[v - 1] % v));
            }
            for (a, b) in extra {
                if a != b {
                    edges.push((a, b));
                }
            }
            Pattern::from_edges(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tdfs_agrees_with_reference(g in arb_graph(), p in arb_pattern()) {
        let cfg = MatcherConfig::tdfs().with_warps(2);
        let got = match_pattern(&g, &p, &cfg).unwrap().matches;
        let want = reference_count(&g, &QueryPlan::build_with(&p, cfg.plan));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn labeled_tdfs_agrees_with_reference(g in arb_labeled_graph(), p in arb_pattern()) {
        let p = p.with_mod_labels(3);
        let cfg = MatcherConfig::tdfs().with_warps(2);
        let got = match_pattern(&g, &p, &cfg).unwrap().matches;
        let want = reference_count(&g, &QueryPlan::build_with(&p, cfg.plan));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn all_engines_agree(g in arb_graph(), p in arb_pattern()) {
        let configs = [
            MatcherConfig::tdfs().with_warps(2),
            MatcherConfig::no_steal().with_warps(2),
            MatcherConfig::stmatch_like().with_warps(2),
            MatcherConfig::pbe_like().with_warps(2),
        ];
        let counts: Vec<u64> = configs
            .iter()
            .map(|c| match_pattern(&g, &p, c).unwrap().matches)
            .collect();
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]), "{:?}", counts);
    }

    #[test]
    fn adversarial_timeout_agrees(g in arb_graph(), p in arb_pattern()) {
        let cfg = MatcherConfig {
            queue_capacity: 2,
            ..MatcherConfig::tdfs().with_warps(3)
        }
        .with_tau(Some(Duration::from_nanos(1)));
        let got = match_pattern(&g, &p, &cfg).unwrap().matches;
        let want = reference_count(&g, &QueryPlan::build_with(&p, cfg.plan));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn automorphism_count_identity(g in arb_graph(), p in arb_pattern()) {
        use tdfs::query::plan::PlanOptions;
        let broken = match_pattern(&g, &p, &MatcherConfig::tdfs().with_warps(2))
            .unwrap()
            .matches;
        let cfg = MatcherConfig {
            plan: PlanOptions { symmetry_breaking: false, intersection_reuse: true },
            ..MatcherConfig::tdfs().with_warps(2)
        };
        let embeddings = match_pattern(&g, &p, &cfg).unwrap().matches;
        let aut = QueryPlan::build(&p).aut_size as u64;
        prop_assert_eq!(embeddings, broken * aut);
    }
}
