//! End-to-end randomized tests (internal-PRNG driven): for random data
//! graphs and random connected patterns, every engine must agree with
//! the serial reference matcher, under default and adversarial settings.

use std::time::Duration;

use tdfs::core::{match_pattern, reference_count, MatcherConfig};
use tdfs::graph::rng::Rng;
use tdfs::graph::{CsrGraph, GraphBuilder};
use tdfs::query::plan::QueryPlan;
use tdfs::query::Pattern;

const CASES: u64 = 48;

/// Random data graph on up to 40 vertices.
fn random_graph(rng: &mut Rng) -> CsrGraph {
    let m = rng.gen_range(1..250);
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.gen_range_u32(0..40), rng.gen_range_u32(0..40)))
        .collect();
    GraphBuilder::new().num_vertices(40).edges(edges).build()
}

/// Random labeled data graph.
fn random_labeled_graph(rng: &mut Rng) -> CsrGraph {
    let g = random_graph(rng);
    let labels: Vec<u32> = (0..40).map(|_| rng.gen_range_u32(0..3)).collect();
    g.with_labels(labels)
}

/// Random connected pattern on 3–5 vertices (kept small so the serial
/// reference stays fast under the case count).
fn random_pattern(rng: &mut Rng) -> Pattern {
    let n = rng.gen_range(3..6);
    let mut edges = Vec::new();
    // Spanning tree: vertex v > 0 attaches to a parent below it.
    for v in 1..n {
        edges.push((v, rng.gen_range(0..v)));
    }
    for _ in 0..rng.gen_range(0..n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.push((a, b));
        }
    }
    Pattern::from_edges(n, &edges)
}

#[test]
fn tdfs_agrees_with_reference() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xE2E0 + case);
        let g = random_graph(&mut rng);
        let p = random_pattern(&mut rng);
        let cfg = MatcherConfig::tdfs().with_warps(2);
        let got = match_pattern(&g, &p, &cfg).unwrap().matches;
        let want = reference_count(&g, &QueryPlan::build_with(&p, cfg.plan));
        assert_eq!(got, want);
    }
}

#[test]
fn labeled_tdfs_agrees_with_reference() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1A8E1 + case);
        let g = random_labeled_graph(&mut rng);
        let p = random_pattern(&mut rng).with_mod_labels(3);
        let cfg = MatcherConfig::tdfs().with_warps(2);
        let got = match_pattern(&g, &p, &cfg).unwrap().matches;
        let want = reference_count(&g, &QueryPlan::build_with(&p, cfg.plan));
        assert_eq!(got, want);
    }
}

#[test]
fn all_engines_agree() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xA112 + case);
        let g = random_graph(&mut rng);
        let p = random_pattern(&mut rng);
        let configs = [
            MatcherConfig::tdfs().with_warps(2),
            MatcherConfig::no_steal().with_warps(2),
            MatcherConfig::stmatch_like().with_warps(2),
            MatcherConfig::pbe_like().with_warps(2),
        ];
        let counts: Vec<u64> = configs
            .iter()
            .map(|c| match_pattern(&g, &p, c).unwrap().matches)
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }
}

#[test]
fn adversarial_timeout_agrees() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x0AD3 + case);
        let g = random_graph(&mut rng);
        let p = random_pattern(&mut rng);
        let cfg = MatcherConfig {
            queue_capacity: 2,
            ..MatcherConfig::tdfs().with_warps(3)
        }
        .with_tau(Some(Duration::from_nanos(1)));
        let got = match_pattern(&g, &p, &cfg).unwrap().matches;
        let want = reference_count(&g, &QueryPlan::build_with(&p, cfg.plan));
        assert_eq!(got, want);
    }
}

#[test]
fn automorphism_count_identity() {
    use tdfs::query::plan::PlanOptions;
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xA404 + case);
        let g = random_graph(&mut rng);
        let p = random_pattern(&mut rng);
        let broken = match_pattern(&g, &p, &MatcherConfig::tdfs().with_warps(2))
            .unwrap()
            .matches;
        let cfg = MatcherConfig {
            plan: PlanOptions {
                symmetry_breaking: false,
                intersection_reuse: true,
            },
            ..MatcherConfig::tdfs().with_warps(2)
        };
        let embeddings = match_pattern(&g, &p, &cfg).unwrap().matches;
        let aut = QueryPlan::build(&p).aut_size as u64;
        assert_eq!(embeddings, broken * aut);
    }
}
