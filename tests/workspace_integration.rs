//! End-to-end integration across the whole workspace: datasets → plans →
//! engines → results, exercised the way the bench harness and examples
//! drive the library.

use tdfs::core::{count_matches, match_pattern, reference_count, MatcherConfig};
use tdfs::graph::generators::barabasi_albert;
use tdfs::graph::{DatasetId, GraphBuilder, GraphStats};
use tdfs::query::plan::QueryPlan;
use tdfs::query::{Pattern, PatternId};

#[test]
fn dataset_registry_generates_all_shapes() {
    // Tiny scale: just verify every dataset generates and matches its
    // labeled/unlabeled contract.
    for id in DatasetId::ALL {
        let g = id.generate(0.03);
        let s = GraphStats::of(&g);
        assert!(s.vertices > 0 && s.edges > 0, "{}", id.name());
        assert_eq!(g.is_labeled(), id.is_big(), "{}", id.name());
    }
}

#[test]
fn dataset_to_engine_pipeline() {
    let g = DatasetId::AmazonS.generate(0.05);
    let cfg = MatcherConfig::tdfs().with_warps(4);
    let r = match_pattern(&g, &PatternId(1).pattern(), &cfg).unwrap();
    let want = reference_count(&g, &QueryPlan::build(&PatternId(1).pattern()));
    assert_eq!(r.matches, want);
    assert!(r.stats.edges_admitted > 0);
}

#[test]
fn symmetry_identity_on_dataset() {
    // embeddings = |Aut| × subgraphs, end to end through the engine.
    use tdfs::query::plan::PlanOptions;
    let g = DatasetId::DblpS.generate(0.05);
    for id in [1u8, 2, 8] {
        let p = PatternId(id).pattern();
        let aut = QueryPlan::build(&p).aut_size as u64;
        let broken = match_pattern(&g, &p, &MatcherConfig::tdfs().with_warps(4))
            .unwrap()
            .matches;
        let cfg_nosym = MatcherConfig {
            plan: PlanOptions {
                symmetry_breaking: false,
                intersection_reuse: true,
            },
            ..MatcherConfig::tdfs().with_warps(4)
        };
        let embeddings = match_pattern(&g, &p, &cfg_nosym).unwrap().matches;
        assert_eq!(embeddings, broken * aut, "P{id}");
    }
}

#[test]
fn custom_pattern_through_facade() {
    // Count 4-cycles in a 3x3 grid graph: the grid has 4 unit squares.
    let mut b = GraphBuilder::new();
    let idx = |r: u32, c: u32| r * 3 + c;
    for r in 0..3 {
        for c in 0..3 {
            if c + 1 < 3 {
                b.push_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < 3 {
                b.push_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    let g = b.build();
    let square = Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    assert_eq!(count_matches(&g, &square), 4);
}

#[test]
fn all_strategies_agree_end_to_end() {
    let g = barabasi_albert(250, 4, 123);
    let p = PatternId(4).pattern();
    let configs = [
        MatcherConfig::tdfs().with_warps(3),
        MatcherConfig::no_steal().with_warps(3),
        MatcherConfig::stmatch_like().with_warps(3),
        MatcherConfig::pbe_like().with_warps(3),
        MatcherConfig::tdfs_array().with_warps(3),
    ];
    let counts: Vec<u64> = configs
        .iter()
        .map(|c| match_pattern(&g, &p, c).unwrap().matches)
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "strategies disagree: {counts:?}"
    );
}

#[test]
fn stats_are_plausible() {
    let g = barabasi_albert(300, 5, 77);
    let r = match_pattern(
        &g,
        &PatternId(2).pattern(),
        &MatcherConfig::tdfs().with_warps(4),
    )
    .unwrap();
    let s = &r.stats;
    assert!(s.warp.intersections > 0);
    assert!(s.warp.elements_probed >= s.warp.elements_emitted);
    assert!(s.stack_bytes_peak > 0);
    assert_eq!(s.queue_rejections, 0, "default queue never fills here");
    assert_eq!(s.candidates_truncated, 0);
    // Paged stacks: page faults happened and the arena tracked them.
    assert!(s.page_faults > 0);
}

#[test]
fn paged_and_array_stacks_agree_with_much_different_memory() {
    // The paper's memory claim needs real degree skew: array stacks must
    // provision d_max per level while intersections stay small. Build a
    // BA graph plus a 15k-degree hub.
    let mut b = GraphBuilder::new();
    let base = barabasi_albert(5_000, 3, 5);
    for (u, v) in base.arcs() {
        if u < v {
            b.push_edge(u, v);
        }
    }
    for v in 0..4_000 {
        b.push_edge(5_000, v);
    }
    let g = b.build();
    assert!(g.max_degree() >= 4_000);
    let p = PatternId(1).pattern();
    let paged = match_pattern(&g, &p, &MatcherConfig::tdfs().with_warps(4)).unwrap();
    let array = match_pattern(&g, &p, &MatcherConfig::tdfs_array().with_warps(4)).unwrap();
    assert_eq!(paged.matches, array.matches);
    assert!(
        paged.stats.stack_bytes_peak * 2 < array.stats.stack_bytes_peak,
        "paged ({}) should use far less stack memory than array ({})",
        paged.stats.stack_bytes_peak,
        array.stats.stack_bytes_peak
    );
}
